//! Capture–emission-time (CET) trap-ensemble BTI model (the paper's
//! Table I "Measurement" column).
//!
//! The ensemble represents the gate-oxide defect population of a device as
//! `N` traps, each with
//!
//! * an **emission time** `τ_e` (at the passive room-temperature reference
//!   condition) drawn from a heavy-tailed distribution spanning ~24 decades,
//! * a **capture time** `τ_c` (at the reference accelerated stress
//!   condition) correlated with `τ_e` — deep, slow-emitting traps are also
//!   slow to capture,
//! * soft (recoverable) and hard (consolidated) occupancy state.
//!
//! A recovery condition scales every emission rate by the acceleration
//! factor θ(V,T) shared with the analytic model, so "permanent" traps are
//! simply those whose `τ_e/θ` exceeds the recovery window — which is exactly
//! why the paper's *activated* recovery (θ ≫ 1) can empty traps passive
//! recovery never touches.
//!
//! Two mechanisms gate the permanent component, mirroring
//! [`crate::analytic::PermanentParams`]:
//!
//! * **window-gated deep capture** — capture into deep traps is a secondary
//!   process that requires sustained stress; its rate is scaled by
//!   `1 − exp(−(t_w/τ_p)^m)` in the continuous-stress window `t_w`. In-time
//!   scheduled recovery resets the window and thereby *prevents* permanent
//!   damage (Fig. 4);
//! * **hardening** — occupied deep traps consolidate (τ ≈ 2 h) after which
//!   no recovery condition can empty them (the >27 % residue of Table I).
//!
//! The emission-time distribution is a piecewise-linear CDF in `log₁₀ τ_e`
//! whose four interior knots are **fitted by simulating the paper's actual
//! measurement protocol** (24 h accelerated stress, 6 h recovery per
//! condition) until the ensemble reproduces the measured recovery
//! percentages.
//!
//! # Kernel layout
//!
//! Trap state lives in flat structure-of-arrays columns (`log_tau_e`,
//! `occ_soft`, `occ_hard`, …) rather than a `Vec<Trap>`. The expensive
//! per-trap quantities — the capture/emission base rates `10^−log τ` and
//! the deep-trap sigmoid weight — depend only on the trap parameters, so
//! they are precomputed once at construction (and after
//! [`TrapEnsemble::with_variation`]) into rate-table columns; the
//! stress/recover hot loops are then straight-line arithmetic plus one
//! exponential per trap-step, chunked across threads with fixed
//! boundaries (bit-identical at any worker count).
//!
//! The exponentials run through `dh-simd`: traps advance in lane groups
//! of [`dh_simd::LANES`] through branch-free polynomial
//! `exp(−x)`/`1 − exp(−x)` kernels that LLVM vectorizes under
//! `#[target_feature(enable = "avx2")]`, with a scalar compilation of the
//! *same source* selected at runtime when AVX2 is unavailable (or forced
//! off) — both backends execute the identical per-element IEEE op
//! sequence, so results are bit-identical either way. The saturated fast
//! path (skipping the polynomial once every lane of a group saturates) is
//! widened to lane granularity; because `dh_simd::one_minus_exp_neg`
//! returns exactly 1.0 at saturation, the skip is a pure optimization and
//! never changes a bit. Stress sub-stepping is adaptive:
//! the step count is chosen so the deep-capture gate moves by at most
//! [`GATE_STEP_TOL`] per step and hardening is resolved at `τ_harden/2`,
//! so long quiet intervals take few steps while transients stay resolved.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dh_exec::Memo;
use dh_units::rng::standard_normal;
use rand::Rng;

use dh_units::{Fraction, Seconds};

use crate::acceleration::RecoveryAcceleration;
use crate::analytic::{PermanentParams, StressLaw};
use crate::calibration::{self, TableOneTargets, DEFAULT_BETA};
use crate::condition::{RecoveryCondition, StressCondition};
use crate::error::BtiError;
use crate::wear::WearModel;

/// Lower edge of the emission-time distribution, log₁₀ seconds.
const LOG_TAU_MIN: f64 = -2.0;
/// Upper edge of the emission-time distribution, log₁₀ seconds.
const LOG_TAU_MAX: f64 = 22.0;
/// Correlation slope between capture and emission times (log–log).
const CAPTURE_SLOPE: f64 = 0.625;
/// Correlation intercept: log₁₀ τ_c = intercept + slope · log₁₀ τ_e.
const CAPTURE_INTERCEPT: f64 = -7.325;
/// Width (decades) of the shallow→deep transition of the gating sigmoid.
const DEEP_TRANSITION_DECADES: f64 = 0.8;
/// Voltage/temperature exponent mapping stress-amplitude scale to capture
/// rate (capture is more strongly field-accelerated than net wearout).
const CAPTURE_ACCEL_EXPONENT: f64 = 3.0;
/// Traps per parallel work unit in the stress/recover loops. Large enough
/// that chunk hand-out cost vanishes, small enough that a 2000-trap
/// ensemble still load-balances across a many-core box.
const TRAP_CHUNK: usize = 256;

/// Maximum movement of the deep-capture gate within one stress sub-step.
/// The gate is the only time-varying coefficient inside a constant-
/// condition stress call, and the kernel evaluates it at the step
/// midpoint, so the O(Δg²) midpoint-rule error per step stays below
/// `GATE_STEP_TOL²/8 ≈ 3e-5` of the gated rate — far inside the model's
/// own calibration tolerance.
const GATE_STEP_TOL: f64 = 1.0 / 64.0;
/// Gate level below which a stress interval is "quiet": deep capture and
/// hardening are negligible for the whole call, so one step suffices.
const GATE_QUIET: f64 = 1e-6;
/// Upper bound on stress sub-steps per call: keeps degenerate inputs
/// (decade-long single calls) from looping forever. At 4096 steps the
/// gate moves ≤ 2.5e-4 per step, far finer than `GATE_STEP_TOL`.
const MAX_SUB_STEPS: usize = 4096;
/// Capture exponent beyond which `1 − exp(−x)` rounds to exactly 1.0 in
/// f64 (`exp(−37) < 2⁻⁵³/2`), so the saturated kernel path may replace
/// the transcendental with the constant 1.0 **bit-exactly**.
const EXP_SATURATE: f64 = 37.0;
/// Recovery exponent beyond which `exp(−x)` is subnormal-or-zero; the
/// kernel zeroes the occupancy outright instead of multiplying by it.
const EXP_UNDERFLOW: f64 = 700.0;
// The kernels lean on dh-simd returning exactly 1.0 / 0.0 at these same
// thresholds; a drift between the two constants would silently break the
// fast-path bit-identity argument.
const _: () = assert!(EXP_SATURATE == dh_simd::ONE_MINUS_EXP_NEG_SATURATE);
const _: () = assert!(EXP_UNDERFLOW == dh_simd::EXP_NEG_UNDERFLOW);

/// Identity of one calibration: the trap count plus the exact bit
/// patterns of every target parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CalibrationKey {
    n_traps: usize,
    bits: [u64; 9],
}

impl CalibrationKey {
    fn new(n_traps: usize, targets: &TableOneTargets) -> Self {
        Self {
            n_traps,
            bits: targets.bit_key(),
        }
    }
}

/// Fitted ensembles, one per distinct `(n_traps, targets)`. The
/// emission-CDF knot fit simulates the full 24 h-stress / 6 h-recovery
/// protocol up to 40 times, so every test, bench, and repro binary that
/// builds an ensemble hits this cache after the first construction. The
/// memo is bounded (LRU-evicted), so sweeps over many target sets cannot
/// grow it without limit.
static CALIBRATIONS: Memo<CalibrationKey, TrapEnsemble> = Memo::bounded(32);
/// Knot fits actually executed in this process (cache hits don't count).
static CALIBRATION_FIT_RUNS: AtomicU64 = AtomicU64::new(0);

/// Number of emission-CDF knot fits executed so far in this process.
/// Cache hits in the calibration memo do not increment this — the
/// counter exists so tests and `perf_snapshot` can verify the fit runs
/// once per distinct target set.
pub fn calibration_fit_runs() -> u64 {
    CALIBRATION_FIT_RUNS.load(Ordering::SeqCst)
}

/// Calibrated knots of the emission-time CDF: `(log₁₀ τ_e, cumulative
/// probability)` pairs, strictly increasing in both coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct EmissionCdf {
    knots: Vec<(f64, f64)>,
}

impl EmissionCdf {
    fn new(interior: &[(f64, f64)]) -> Self {
        let mut knots = Vec::with_capacity(interior.len() + 2);
        knots.push((LOG_TAU_MIN, 0.0));
        knots.extend_from_slice(interior);
        knots.push((LOG_TAU_MAX, 1.0));
        Self { knots }
    }

    /// Inverse CDF: the log₁₀ τ_e at cumulative probability `p ∈ [0, 1]`.
    ///
    /// Binary search for the bracketing segment (the knot list is sorted
    /// in probability), then the same linear interpolation a forward scan
    /// would produce.
    fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        // First knot with cumulative probability ≥ p is the right end of
        // the bracketing segment; clamped to ≥ 1 so a left knot exists
        // (p = 0 lands on the first segment, as in a forward scan).
        let hi = self.knots.partition_point(|&(_, pk)| pk < p).max(1);
        if hi >= self.knots.len() {
            return LOG_TAU_MAX;
        }
        let (x0, p0) = self.knots[hi - 1];
        let (x1, p1) = self.knots[hi];
        if p1 == p0 {
            return x0;
        }
        x0 + (x1 - x0) * (p - p0) / (p1 - p0)
    }

    /// The interior knots (excluding the fixed endpoints).
    pub fn interior_knots(&self) -> &[(f64, f64)] {
        &self.knots[1..self.knots.len() - 1]
    }
}

/// A CET trap-ensemble BTI device.
///
/// Trap state is stored as structure-of-arrays columns (one `Vec<f64>`
/// per field, index = trap); see the module docs for the kernel layout.
#[derive(Debug, Clone, PartialEq)]
pub struct TrapEnsemble {
    /// log₁₀ emission time at the passive room reference, seconds.
    log_tau_e: Vec<f64>,
    /// log₁₀ capture time at the reference accelerated stress, seconds.
    log_tau_c: Vec<f64>,
    /// Precomputed capture base rate `10^−log τ_c`, 1/s.
    capture_base: Vec<f64>,
    /// Precomputed emission base rate `10^−log τ_e`, 1/s.
    emit_base: Vec<f64>,
    /// Precomputed deep-trap gating weight (sigmoid of `log τ_e`).
    deep: Vec<f64>,
    /// Soft (recoverable) occupancy probability.
    occ_soft: Vec<f64>,
    /// Hard (consolidated, unrecoverable) occupancy probability.
    occ_hard: Vec<f64>,
    cdf: EmissionCdf,
    acceleration: RecoveryAcceleration,
    theta4: f64,
    stress_law: StressLaw,
    permanent: PermanentParams,
    /// ΔVth contribution (mV) of one fully occupied trap.
    per_trap_mv: f64,
    /// Continuous-stress window (drives deep-capture gating).
    window: Seconds,
    /// Boundary (log₁₀ τ_e) of the shallow→deep transition.
    deep_edge: f64,
}

/// The adaptive sub-step schedule for a constant-condition stress call:
/// `(steps, sub)` with `steps · sub = dt`.
///
/// The count resolves the two time-varying processes inside a stress
/// call: the deep-capture gate may move at most [`GATE_STEP_TOL`] per
/// step, and hardening is sampled at least every `τ_harden/2`. An
/// interval whose gate never exceeds [`GATE_QUIET`] is integrated in a
/// single step (the per-trap capture exponential is exact for constant
/// rates, so quiet intervals lose no accuracy).
fn stress_schedule(dt: f64, window0: f64, permanent: &PermanentParams) -> (usize, f64) {
    let tau_onset = permanent.tau_onset.value();
    let m = permanent.m;
    let g_end = gate_value(window0 + dt, tau_onset, m);
    if g_end <= GATE_QUIET {
        return (1, dt);
    }
    let g_start = gate_value(window0, tau_onset, m);
    let n_gate = ((g_end - g_start) / GATE_STEP_TOL).ceil();
    let n_harden = (dt / (0.5 * permanent.tau_harden.value())).ceil();
    let steps = (n_gate.max(n_harden) as usize).clamp(1, MAX_SUB_STEPS);
    (steps, dt / steps as f64)
}

/// The window-gating factor `1 − exp(−(w/τ_onset)^m)` of deep capture.
fn gate_value(window: f64, tau_onset: f64, m: f64) -> f64 {
    1.0 - (-((window / tau_onset).powf(m))).exp()
}

/// SIMD lane width the stress kernel advances traps at. The saturated
/// fast-path decision is made per lane *group* (all lanes saturated), and
/// because that decision is part of the shared kernel body it is the same
/// under every backend.
const LANES: usize = dh_simd::LANES;

/// Advances one lane group of traps through every sub-step of a stress
/// call. `gates` is non-decreasing, so if every lane's first-step capture
/// exponent saturates, every exponent of the whole group does — the
/// polynomial (which returns exactly 1.0 there) can be skipped without
/// changing a bit. Returns the number of lanes whose exponent saturates
/// (an observability statistic, not a control input).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn stress_lane_group(
    s: &mut [f64; LANES],
    h: &mut [f64; LANES],
    c: &[f64; LANES],
    d: &[f64; LANES],
    gates: &[f64],
    amp_sub: f64,
    harden_step: f64,
    first_gate: f64,
) -> u64 {
    // Per-step capture exponent x = amp·c·((1−d) + d·g)·sub, split into
    // its gate-independent and gate-proportional parts so the inner loop
    // is one mul-add per lane.
    let mut x_shallow = [0.0; LANES];
    let mut x_deep = [0.0; LANES];
    let mut harden_scale = [0.0; LANES];
    let mut saturated = 0u64;
    let mut all_saturated = true;
    for l in 0..LANES {
        x_shallow[l] = amp_sub * c[l] * (1.0 - d[l]);
        x_deep[l] = amp_sub * c[l] * d[l];
        harden_scale[l] = d[l] * harden_step;
        let sat = x_shallow[l] + x_deep[l] * first_gate >= EXP_SATURATE;
        saturated += sat as u64;
        all_saturated &= sat;
    }
    if all_saturated {
        for &gate in gates {
            for l in 0..LANES {
                // What the full path computes with the polynomial pinned
                // at its exact saturated value 1.0.
                let captured = 1.0 - s[l] - h[l];
                let os = s[l] + captured;
                let harden = os * harden_scale[l] * gate;
                s[l] = os - harden;
                h[l] += harden;
            }
        }
    } else {
        for &gate in gates {
            for l in 0..LANES {
                let x = x_shallow[l] + x_deep[l] * gate;
                let captured = (1.0 - s[l] - h[l]) * dh_simd::one_minus_exp_neg(x);
                let os = s[l] + captured;
                let harden = os * harden_scale[l] * gate;
                s[l] = os - harden;
                h[l] += harden;
            }
        }
    }
    saturated
}

dh_simd::dispatch! {
    /// One parallel chunk of the stress kernel: traps advance in lane
    /// groups of [`LANES`]; the remainder group is padded with zero-rate
    /// lanes (`x = 0`: nothing is captured, nothing hardens, and a
    /// zero-exponent lane can never saturate, so padding never flips the
    /// group fast path — which would be harmless anyway, see
    /// [`stress_lane_group`]). Returns the chunk's saturated-lane count.
    #[allow(clippy::too_many_arguments)]
    fn stress_chunk_kernel(
        soft: &mut [f64],
        hard: &mut [f64],
        capture: &[f64],
        deepw: &[f64],
        gates: &[f64],
        amp_sub: f64,
        harden_step: f64,
        first_gate: f64,
    ) -> u64 {
        let n = soft.len();
        let mut saturated = 0u64;
        let mut i = 0;
        while i + LANES <= n {
            let mut s: [f64; LANES] = soft[i..i + LANES].try_into().unwrap();
            let mut h: [f64; LANES] = hard[i..i + LANES].try_into().unwrap();
            let c: [f64; LANES] = capture[i..i + LANES].try_into().unwrap();
            let d: [f64; LANES] = deepw[i..i + LANES].try_into().unwrap();
            saturated +=
                stress_lane_group(&mut s, &mut h, &c, &d, gates, amp_sub, harden_step, first_gate);
            soft[i..i + LANES].copy_from_slice(&s);
            hard[i..i + LANES].copy_from_slice(&h);
            i += LANES;
        }
        if i < n {
            let rem = n - i;
            let mut s = [0.0; LANES];
            let mut h = [0.0; LANES];
            let mut c = [0.0; LANES];
            let mut d = [0.0; LANES];
            s[..rem].copy_from_slice(&soft[i..]);
            h[..rem].copy_from_slice(&hard[i..]);
            c[..rem].copy_from_slice(&capture[i..]);
            d[..rem].copy_from_slice(&deepw[i..]);
            saturated +=
                stress_lane_group(&mut s, &mut h, &c, &d, gates, amp_sub, harden_step, first_gate);
            soft[i..].copy_from_slice(&s[..rem]);
            hard[i..].copy_from_slice(&h[..rem]);
        }
        saturated
    }
}

dh_simd::dispatch! {
    /// One parallel chunk of the recovery kernel: element-wise
    /// `s ← s · exp(−x)` with `dh_simd::exp_neg` flushing to exactly 0.0
    /// past the underflow threshold (occupancies are non-negative, so the
    /// multiply zeroes the lane just as the old explicit store did). No
    /// group-granular decisions, so no padding is needed — the straight
    /// loop is bit-identical under every backend.
    fn recover_chunk_kernel(
        soft: &mut [f64],
        emit: &[f64],
        deepw: &[f64],
        theta: f64,
        anneal: f64,
        dt_s: f64,
    ) {
        for ((s, &e), &d) in soft.iter_mut().zip(emit).zip(deepw) {
            let x = (theta * e + anneal * d) * dt_s;
            *s *= dh_simd::exp_neg(x);
        }
    }
}

thread_local! {
    /// Reusable gate-trajectory buffer: `stress` fills it once per call,
    /// keeping the hot path allocation-free after the first call on each
    /// thread (the baselines `stress_pr2`/`stress_pr1` deliberately keep
    /// their per-call allocation for the bench comparison).
    static GATES_SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

impl TrapEnsemble {
    /// Builds an ensemble of `n_traps` calibrated against the paper's
    /// Table I **measurement** column by simulating the measurement protocol.
    ///
    /// Trap parameters are stratified (deterministic) samples of the fitted
    /// distribution; use [`TrapEnsemble::with_variation`] to add
    /// device-to-device randomness.
    ///
    /// # Errors
    ///
    /// Returns [`BtiError::EmptyEnsemble`] if `n_traps == 0`, or
    /// [`BtiError::CalibrationDiverged`] if the protocol fit fails to reach
    /// tolerance (does not happen for the built-in targets; covered by
    /// tests).
    pub fn paper_calibrated(n_traps: usize) -> Result<Self, BtiError> {
        Self::calibrated(n_traps, &TableOneTargets::measurement_column())
    }

    /// Builds an ensemble calibrated against custom Table I-style targets.
    ///
    /// The knot fit is memoized per `(n_traps, targets)`: the first
    /// construction runs the iterative protocol fit, later ones clone the
    /// cached result. Use [`calibration_fit_runs`] to observe the cache.
    ///
    /// # Errors
    ///
    /// See [`TrapEnsemble::paper_calibrated`]; additionally returns
    /// [`BtiError::UnsolvableCalibration`] if the closed-form seed
    /// calibration rejects the targets.
    pub fn calibrated(n_traps: usize, targets: &TableOneTargets) -> Result<Self, BtiError> {
        Self::calibrated_shared(n_traps, targets).map(|fitted| (*fitted).clone())
    }

    /// [`TrapEnsemble::calibrated`] without the final clone: returns the
    /// cached fitted ensemble itself. Two calls with identical arguments
    /// return the same `Arc`, which is also how tests verify the fit runs
    /// once per target set.
    ///
    /// # Errors
    ///
    /// See [`TrapEnsemble::calibrated`]. Errors are not cached — a failing
    /// target set re-runs the fit on every attempt.
    pub fn calibrated_shared(
        n_traps: usize,
        targets: &TableOneTargets,
    ) -> Result<Arc<Self>, BtiError> {
        if n_traps == 0 {
            return Err(BtiError::EmptyEnsemble);
        }
        CALIBRATIONS.try_get_or_insert_with(CalibrationKey::new(n_traps, targets), || {
            CALIBRATION_FIT_RUNS.fetch_add(1, Ordering::SeqCst);
            dh_obs::counter!("bti.cet.calibration_fits").incr();
            let _timer = dh_obs::span("bti.cet.calibration_fit_seconds");
            Self::fit(n_traps, targets)
        })
    }

    /// The actual iterative knot fit behind [`TrapEnsemble::calibrated`].
    fn fit(n_traps: usize, targets: &TableOneTargets) -> Result<Self, BtiError> {
        // Seed the acceleration factors and initial knot positions from the
        // closed-form analytic solution for the same targets.
        let seed = calibration::solve(targets, DEFAULT_BETA)?;
        let acceleration = seed.acceleration;
        let theta4 = acceleration.factor(RecoveryCondition {
            gate_voltage: -targets.reverse_bias,
            temperature: targets.hot,
        });

        let thetas: [f64; 4] = RecoveryCondition::table_one().map(|c| acceleration.factor(c));
        let t_rec = targets.recovery_time.value();
        let mut knots: Vec<(f64, f64)> = thetas
            .iter()
            .zip(targets.fractions)
            .map(|(&theta, p)| ((t_rec * theta).log10(), p.value()))
            .collect();

        let tolerance = 0.0025;
        let mut worst = f64::INFINITY;
        for _ in 0..40 {
            let ensemble = Self::from_knots(n_traps, &knots, acceleration, theta4, targets);
            let simulated = ensemble.simulate_protocol(targets);
            worst = 0.0;
            for i in 0..4 {
                let err = simulated[i] - targets.fractions[i].value();
                worst = worst.max(err.abs());
                // Local CDF slope (probability per decade) around knot i.
                let (lo_x, lo_p) = if i == 0 {
                    (LOG_TAU_MIN, 0.0)
                } else {
                    knots[i - 1]
                };
                let (hi_x, hi_p) = if i == 3 {
                    (LOG_TAU_MAX, 1.0)
                } else {
                    knots[i + 1]
                };
                let slope = ((hi_p - lo_p) / (hi_x - lo_x)).max(1e-4);
                // If the ensemble recovers too much at condition i, push the
                // knot right (slower emission at that quantile). Damped.
                let mut x = knots[i].0 + 0.7 * err / slope;
                let lo = if i == 0 {
                    LOG_TAU_MIN + 0.1
                } else {
                    knots[i - 1].0 + 0.05
                };
                let hi = if i == 3 {
                    LOG_TAU_MAX - 0.1
                } else {
                    knots[i + 1].0 - 0.05
                };
                // A knot squeezed by its neighbours stays ordered.
                if lo < hi {
                    x = x.clamp(lo, hi);
                    knots[i].0 = x;
                }
            }
            if worst < tolerance {
                let mut ensemble = Self::from_knots(n_traps, &knots, acceleration, theta4, targets);
                ensemble.normalize_magnitude(targets);
                return Ok(ensemble);
            }
        }
        Err(BtiError::CalibrationDiverged {
            worst_error: worst,
            tolerance,
        })
    }

    fn from_knots(
        n_traps: usize,
        interior: &[(f64, f64)],
        acceleration: RecoveryAcceleration,
        theta4: f64,
        targets: &TableOneTargets,
    ) -> Self {
        let cdf = EmissionCdf::new(interior);
        // Deep traps are those beyond the deepest calibrated recovery reach.
        let deep_edge = (targets.recovery_time.value() * theta4).log10();
        let log_tau_e: Vec<f64> = (0..n_traps)
            .map(|k| {
                let u = (k as f64 + 0.5) / n_traps as f64;
                cdf.quantile(u)
            })
            .collect();
        let log_tau_c: Vec<f64> = log_tau_e
            .iter()
            .map(|&le| CAPTURE_INTERCEPT + CAPTURE_SLOPE * le)
            .collect();
        let mut ensemble = Self {
            log_tau_e,
            log_tau_c,
            capture_base: Vec::new(),
            emit_base: Vec::new(),
            deep: Vec::new(),
            occ_soft: vec![0.0; n_traps],
            occ_hard: vec![0.0; n_traps],
            cdf,
            acceleration,
            theta4,
            stress_law: StressLaw::default(),
            permanent: PermanentParams::default(),
            per_trap_mv: 1.0,
            window: Seconds::ZERO,
            deep_edge,
        };
        ensemble.rebuild_rate_tables();
        ensemble
    }

    /// Recomputes the derived rate-table columns (`capture_base`,
    /// `emit_base`, `deep`) from the trap parameters. Must be called after
    /// any mutation of `log_tau_e`/`log_tau_c` — this is the only place
    /// the hot-loop `powf`/sigmoid evaluations happen.
    fn rebuild_rate_tables(&mut self) {
        self.capture_base = self.log_tau_c.iter().map(|&lc| 10f64.powf(-lc)).collect();
        self.emit_base = self.log_tau_e.iter().map(|&le| 10f64.powf(-le)).collect();
        let deep_edge = self.deep_edge;
        self.deep = self
            .log_tau_e
            .iter()
            .map(|&le| deep_weight_at(deep_edge, le))
            .collect();
    }

    /// Scales the per-trap ΔVth contribution so the calibration protocol's
    /// end-of-stress wearout matches the analytic stress law.
    fn normalize_magnitude(&mut self, targets: &TableOneTargets) {
        let mut probe = self.clone();
        probe.per_trap_mv = 1.0;
        probe.stress(targets.stress_time, StressCondition::ACCELERATED);
        let occupied = probe.delta_vth_mv();
        if occupied > 0.0 {
            let want = self
                .stress_law
                .wearout_mv(targets.stress_time, StressCondition::ACCELERATED);
            self.per_trap_mv = want / occupied;
        }
    }

    /// Simulates the Table I protocol and returns the four recovery
    /// fractions in condition order.
    fn simulate_protocol(&self, targets: &TableOneTargets) -> [f64; 4] {
        let mut stressed = self.clone();
        stressed.stress(targets.stress_time, StressCondition::ACCELERATED);
        let w0 = stressed.delta_vth_mv();
        RecoveryCondition::table_one().map(|cond| {
            let mut d = stressed.clone();
            d.recover(targets.recovery_time, cond);
            if w0 > 0.0 {
                (w0 - d.delta_vth_mv()) / w0
            } else {
                0.0
            }
        })
    }

    /// The fitted emission-time CDF.
    pub fn emission_cdf(&self) -> &EmissionCdf {
        &self.cdf
    }

    /// Number of traps.
    pub fn len(&self) -> usize {
        self.log_tau_e.len()
    }

    /// Whether the ensemble has no traps (never true for constructed
    /// ensembles).
    pub fn is_empty(&self) -> bool {
        self.log_tau_e.is_empty()
    }

    /// Total |ΔVth| in millivolts.
    pub fn delta_vth_mv(&self) -> f64 {
        self.per_trap_mv
            * self
                .occ_soft
                .iter()
                .zip(&self.occ_hard)
                .map(|(s, h)| s + h)
                .sum::<f64>()
    }

    /// The consolidated (hard) permanent component in millivolts.
    pub fn permanent_mv(&self) -> f64 {
        self.per_trap_mv * self.occ_hard.iter().sum::<f64>()
    }

    /// Mean trap occupancy (soft + hard), a number in `[0, 1]`.
    pub fn mean_occupancy(&self) -> Fraction {
        if self.is_empty() {
            return Fraction::ZERO;
        }
        let total: f64 = self
            .occ_soft
            .iter()
            .zip(&self.occ_hard)
            .map(|(s, h)| s + h)
            .sum();
        Fraction::clamped(total / self.len() as f64)
    }

    /// Test-only view of the occupancy columns `(soft, hard)`.
    #[doc(hidden)]
    pub fn occupancy_columns(&self) -> (&[f64], &[f64]) {
        (&self.occ_soft, &self.occ_hard)
    }

    /// The capture-rate amplitude at `cond` relative to the reference
    /// accelerated condition.
    fn capture_amplitude(&self, cond: StressCondition) -> f64 {
        self.stress_law
            .amplitude_scale(cond)
            .powf(CAPTURE_ACCEL_EXPONENT)
            .min(1.0e3)
    }

    /// Midpoint gate values for each sub-step of a stress call, written
    /// into `buf` (cleared first; capacity is reused across calls).
    fn fill_gate_trajectory(&self, buf: &mut Vec<f64>, steps: usize, sub: f64) {
        let tau_onset = self.permanent.tau_onset.value();
        let m = self.permanent.m;
        let window0 = self.window.value();
        buf.clear();
        buf.extend((0..steps).map(|k| gate_value(window0 + (k as f64 + 0.5) * sub, tau_onset, m)));
    }

    /// Allocating form of [`TrapEnsemble::fill_gate_trajectory`], used by
    /// the retained baseline kernels.
    fn gate_trajectory(&self, steps: usize, sub: f64) -> Vec<f64> {
        let mut gates = Vec::with_capacity(steps);
        self.fill_gate_trajectory(&mut gates, steps, sub);
        gates
    }

    /// Applies `dt` of stress at `cond`.
    ///
    /// Runs the SIMD structure-of-arrays kernel: the adaptive sub-step
    /// schedule and the per-step gate trajectory are computed once (into a
    /// reused thread-local buffer — no per-call allocation), then traps
    /// evolve through all steps in lane groups of [`LANES`] using their
    /// precomputed rate-table entries and the `dh-simd` polynomial
    /// `1 − exp(−x)`. Lane groups whose every capture exponent saturates
    /// (see [`EXP_SATURATE`]) skip the polynomial bit-exactly. The kernel
    /// body is compiled for both AVX2 and plain scalar and dispatched at
    /// runtime; results are bit-identical at any thread count and under
    /// either backend.
    pub fn stress(&mut self, dt: Seconds, cond: StressCondition) {
        if !(dt.value() > 0.0) || !cond.is_finite() {
            return;
        }
        let (steps, sub) = stress_schedule(dt.value(), self.window.value(), &self.permanent);
        dh_obs::counter!("bti.cet.stress_calls").incr();
        dh_obs::counter!("bti.cet.sub_steps").add(steps as u64);
        dh_obs::histogram!("bti.cet.step_seconds").record(sub);
        GATES_SCRATCH.with(|cell| {
            let mut buf = cell.borrow_mut();
            self.fill_gate_trajectory(&mut buf, steps, sub);
            let gates: &[f64] = &buf;
            let first_gate = gates[0];
            let amp_sub = self.capture_amplitude(cond) * sub;
            let harden_step = 1.0 - (-sub / self.permanent.tau_harden.value()).exp();
            let capture_base = &self.capture_base;
            let deep = &self.deep;
            // Each chunk reports how many of its lanes saturated, so obs
            // can track the fraction of transcendental-free traps.
            let saturated_per_chunk = dh_exec::par_chunks_mut2(
                &mut self.occ_soft,
                &mut self.occ_hard,
                TRAP_CHUNK,
                |ci, soft, hard| {
                    let offset = ci * TRAP_CHUNK;
                    let capture = &capture_base[offset..offset + soft.len()];
                    let deepw = &deep[offset..offset + soft.len()];
                    stress_chunk_kernel(
                        soft,
                        hard,
                        capture,
                        deepw,
                        gates,
                        amp_sub,
                        harden_step,
                        first_gate,
                    )
                },
            );
            if dh_obs::ENABLED {
                dh_obs::counter!("bti.cet.traps_saturated")
                    .add(saturated_per_chunk.iter().sum::<u64>());
                dh_obs::counter!("bti.cet.traps_stressed").add(self.occ_soft.len() as u64);
            }
        });
        self.window += Seconds::new(sub * steps as f64);
    }

    /// The PR 2 SoA stress kernel (per-trap scalar loop, libm `exp_m1`,
    /// per-trap saturated fast path, allocating gate trajectory): kept as
    /// the measured baseline for `perf_snapshot`'s SIMD speedup row. Not
    /// part of the API.
    #[doc(hidden)]
    pub fn stress_pr2(&mut self, dt: Seconds, cond: StressCondition) {
        if !(dt.value() > 0.0) || !cond.is_finite() {
            return;
        }
        let (steps, sub) = stress_schedule(dt.value(), self.window.value(), &self.permanent);
        let gates = self.gate_trajectory(steps, sub);
        let first_gate = gates[0];
        let amp_sub = self.capture_amplitude(cond) * sub;
        let harden_step = 1.0 - (-sub / self.permanent.tau_harden.value()).exp();
        let capture_base = &self.capture_base;
        let deep = &self.deep;
        dh_exec::par_chunks_mut2(
            &mut self.occ_soft,
            &mut self.occ_hard,
            TRAP_CHUNK,
            |ci, soft, hard| {
                let offset = ci * TRAP_CHUNK;
                let capture = &capture_base[offset..offset + soft.len()];
                let deepw = &deep[offset..offset + soft.len()];
                let mut saturated: u64 = 0;
                for ((s, h), (&c, &d)) in soft
                    .iter_mut()
                    .zip(hard.iter_mut())
                    .zip(capture.iter().zip(deepw))
                {
                    let x_shallow = amp_sub * c * (1.0 - d);
                    let x_deep = amp_sub * c * d;
                    let harden_scale = d * harden_step;
                    let mut os = *s;
                    let mut oh = *h;
                    // The gate trajectory is non-decreasing, so the first
                    // step has the smallest capture exponent.
                    if x_shallow + x_deep * first_gate >= EXP_SATURATE {
                        saturated += 1;
                        for &gate in &gates {
                            os += 1.0 - os - oh;
                            let harden = os * harden_scale * gate;
                            os -= harden;
                            oh += harden;
                        }
                    } else {
                        for &gate in &gates {
                            let x = x_shallow + x_deep * gate;
                            // 1 − exp(−x) without the cancellation.
                            let captured = (1.0 - os - oh) * (-(-x).exp_m1());
                            os += captured;
                            let harden = os * harden_scale * gate;
                            os -= harden;
                            oh += harden;
                        }
                    }
                    *s = os;
                    *h = oh;
                }
                saturated
            },
        );
        self.window += Seconds::new(sub * steps as f64);
    }

    /// Scalar per-trap reference for [`TrapEnsemble::stress`]: the same
    /// adaptive schedule and model, but with every per-trap `powf` and
    /// sigmoid re-evaluated inside the loop and the naive `1 − exp(−x)`
    /// formulation. The SoA kernel must agree with this to ≤1e-12 relative
    /// on the aggregate observables. Not part of the API.
    #[doc(hidden)]
    pub fn stress_reference(&mut self, dt: Seconds, cond: StressCondition) {
        if !(dt.value() > 0.0) || !cond.is_finite() {
            return;
        }
        let (steps, sub) = stress_schedule(dt.value(), self.window.value(), &self.permanent);
        let gates = self.gate_trajectory(steps, sub);
        let amp = self.capture_amplitude(cond);
        let harden_step = 1.0 - (-sub / self.permanent.tau_harden.value()).exp();
        let deep_edge = self.deep_edge;
        for (((&le, &lc), s), h) in self
            .log_tau_e
            .iter()
            .zip(&self.log_tau_c)
            .zip(&mut self.occ_soft)
            .zip(&mut self.occ_hard)
        {
            let deep = deep_weight_at(deep_edge, le);
            let base_rate = amp / 10f64.powf(lc);
            for &gate in &gates {
                let rate = base_rate * ((1.0 - deep) + deep * gate);
                let captured = (1.0 - *s - *h) * (1.0 - (-rate * sub).exp());
                *s += captured;
                let harden = *s * deep * gate * harden_step;
                *s -= harden;
                *h += harden;
            }
        }
        self.window += Seconds::new(sub * steps as f64);
    }

    /// The PR 1 stress kernel (fixed 900 s stride, per-trap `powf` and
    /// sigmoid hoisted out of the step loop, parallel chunks): kept as the
    /// measured baseline for `perf_snapshot`'s pr1-vs-pr2 comparison. Not
    /// part of the API.
    #[doc(hidden)]
    pub fn stress_pr1(&mut self, dt: Seconds, cond: StressCondition) {
        if !(dt.value() > 0.0) || !cond.is_finite() {
            return;
        }
        let steps = ((dt.value() / 900.0).ceil() as usize).clamp(1, 400);
        let sub = dt.value() / steps as f64;
        let amp = self.capture_amplitude(cond);
        let tau_onset = self.permanent.tau_onset.value();
        let m = self.permanent.m;
        let window0 = self.window.value();
        let gates: Vec<f64> = (0..steps)
            .map(|k| gate_value(window0 + (k as f64 + 0.5) * sub, tau_onset, m))
            .collect();
        let harden_step = 1.0 - (-sub / self.permanent.tau_harden.value()).exp();
        let deep_edge = self.deep_edge;
        let log_tau_e = &self.log_tau_e;
        let log_tau_c = &self.log_tau_c;
        dh_exec::par_chunks_mut2(
            &mut self.occ_soft,
            &mut self.occ_hard,
            TRAP_CHUNK,
            |ci, soft, hard| {
                let offset = ci * TRAP_CHUNK;
                for (j, (s, h)) in soft.iter_mut().zip(hard.iter_mut()).enumerate() {
                    let deep = deep_weight_at(deep_edge, log_tau_e[offset + j]);
                    let base_rate = amp / 10f64.powf(log_tau_c[offset + j]);
                    for &gate in &gates {
                        let rate = base_rate * ((1.0 - deep) + deep * gate);
                        let captured = (1.0 - *s - *h) * (1.0 - (-rate * sub).exp());
                        *s += captured;
                        let harden = *s * deep * gate * harden_step;
                        *s -= harden;
                        *h += harden;
                    }
                }
            },
        );
        self.window += Seconds::new(sub * steps as f64);
    }

    /// Applies `dt` of recovery at `cond`.
    ///
    /// One exponential per trap over the precomputed emission-rate column,
    /// evaluated by the `dh-simd` polynomial `exp(−x)` (exactly 0.0 past
    /// [`EXP_UNDERFLOW`], zeroing the occupancy as the scalar kernel's
    /// explicit store did). The kernel body is compiled for both AVX2 and
    /// plain scalar and dispatched at runtime; bit-identical at any thread
    /// count and under either backend.
    pub fn recover(&mut self, dt: Seconds, cond: RecoveryCondition) {
        if !(dt.value() > 0.0) || !cond.is_finite() {
            return;
        }
        dh_obs::counter!("bti.cet.recover_calls").incr();
        let theta = self.acceleration.factor(cond);
        let depth = theta / self.theta4;
        // Deep recovery additionally relaxes precursor (soft) occupancy of
        // deep traps before it consolidates.
        let anneal = depth / self.permanent.tau_soft_anneal.value();
        let dt_s = dt.value();
        let emit_base = &self.emit_base;
        let deep = &self.deep;
        dh_exec::par_chunks_mut(&mut self.occ_soft, TRAP_CHUNK, |ci, soft| {
            let offset = ci * TRAP_CHUNK;
            let emit = &emit_base[offset..offset + soft.len()];
            let deepw = &deep[offset..offset + soft.len()];
            recover_chunk_kernel(soft, emit, deepw, theta, anneal, dt_s);
        });
        // Deep recovery resets the continuous-stress window.
        self.window = self.window * (-depth * dt_s / self.permanent.tau_window_reset.value()).exp();
    }

    /// The PR 2 recovery kernel (libm `exp`, explicit underflow store):
    /// kept as the measured baseline for `perf_snapshot`. Not part of the
    /// API.
    #[doc(hidden)]
    pub fn recover_pr2(&mut self, dt: Seconds, cond: RecoveryCondition) {
        if !(dt.value() > 0.0) || !cond.is_finite() {
            return;
        }
        let theta = self.acceleration.factor(cond);
        let depth = theta / self.theta4;
        let anneal = depth / self.permanent.tau_soft_anneal.value();
        let dt_s = dt.value();
        let emit_base = &self.emit_base;
        let deep = &self.deep;
        dh_exec::par_chunks_mut(&mut self.occ_soft, TRAP_CHUNK, |ci, soft| {
            let offset = ci * TRAP_CHUNK;
            let emit = &emit_base[offset..offset + soft.len()];
            let deepw = &deep[offset..offset + soft.len()];
            for ((s, &e), &d) in soft.iter_mut().zip(emit).zip(deepw) {
                let x = (theta * e + anneal * d) * dt_s;
                *s = if x >= EXP_UNDERFLOW {
                    0.0
                } else {
                    *s * (-x).exp()
                };
            }
        });
        self.window = self.window * (-depth * dt_s / self.permanent.tau_window_reset.value()).exp();
    }

    /// Scalar per-trap reference for [`TrapEnsemble::recover`] (per-trap
    /// `powf` and sigmoid, serial). Not part of the API.
    #[doc(hidden)]
    pub fn recover_reference(&mut self, dt: Seconds, cond: RecoveryCondition) {
        if !(dt.value() > 0.0) || !cond.is_finite() {
            return;
        }
        let theta = self.acceleration.factor(cond);
        let depth = theta / self.theta4;
        let tau_soft = self.permanent.tau_soft_anneal.value();
        let deep_edge = self.deep_edge;
        let dt_s = dt.value();
        for (&le, s) in self.log_tau_e.iter().zip(&mut self.occ_soft) {
            let emit_rate = theta / 10f64.powf(le);
            let deep = deep_weight_at(deep_edge, le);
            let anneal_rate = deep * depth / tau_soft;
            *s *= (-(emit_rate + anneal_rate) * dt_s).exp();
        }
        self.window = self.window * (-depth * dt_s / self.permanent.tau_window_reset.value()).exp();
    }

    /// Adds device-to-device variation: jitters every trap's emission and
    /// capture times by log-normal perturbations (`sigma_decades` standard
    /// deviation in log₁₀ space) and rebuilds the precomputed rate tables.
    #[must_use]
    pub fn with_variation<R: Rng>(mut self, sigma_decades: f64, rng: &mut R) -> Self {
        for (le, lc) in self.log_tau_e.iter_mut().zip(&mut self.log_tau_c) {
            let ge: f64 = standard_normal(rng);
            let gc: f64 = standard_normal(rng);
            *le = (*le + sigma_decades * ge).clamp(LOG_TAU_MIN, LOG_TAU_MAX);
            *lc += sigma_decades * gc;
        }
        self.rebuild_rate_tables();
        self
    }

    /// Runs the Table I protocol on this (fresh) ensemble, returning the
    /// four recovery percentages in condition order — the crate's analogue
    /// of re-running the paper's measurement.
    pub fn table_one_percentages(&self) -> [f64; 4] {
        self.simulate_protocol(&TableOneTargets::measurement_column())
            .map(|f| f * 100.0)
    }
}

impl WearModel for TrapEnsemble {
    fn stress(&mut self, dt: Seconds, cond: StressCondition) {
        TrapEnsemble::stress(self, dt, cond);
    }

    fn recover(&mut self, dt: Seconds, cond: RecoveryCondition) {
        TrapEnsemble::recover(self, dt, cond);
    }

    fn delta_vth_mv(&self) -> f64 {
        TrapEnsemble::delta_vth_mv(self)
    }

    fn permanent_mv(&self) -> f64 {
        TrapEnsemble::permanent_mv(self)
    }
}

/// The deep-trap gating weight: 0 for shallow traps, →1 beyond `deep_edge`.
#[inline]
fn deep_weight_at(deep_edge: f64, log_tau_e: f64) -> f64 {
    1.0 / (1.0 + (-(log_tau_e - deep_edge) / DEEP_TRANSITION_DECADES).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_units::rng::seeded_rng;

    fn ensemble() -> TrapEnsemble {
        TrapEnsemble::paper_calibrated(2000).expect("calibration converges")
    }

    fn rel_diff(a: f64, b: f64) -> f64 {
        (a - b).abs() / b.abs().max(1e-30)
    }

    #[test]
    fn calibration_reproduces_measurement_column() {
        let e = ensemble();
        let got = e.table_one_percentages();
        let want = [0.66, 16.7, 28.7, 72.4];
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1.0, "got {got:?} want {want:?}");
        }
    }

    #[test]
    fn empty_ensemble_is_rejected() {
        assert!(matches!(
            TrapEnsemble::paper_calibrated(0),
            Err(BtiError::EmptyEnsemble)
        ));
    }

    #[test]
    fn quantile_function_is_monotone() {
        let e = ensemble();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = e.emission_cdf().quantile(i as f64 / 100.0);
            assert!(q >= prev);
            prev = q;
        }
        assert_eq!(e.emission_cdf().quantile(0.0), LOG_TAU_MIN);
        assert_eq!(e.emission_cdf().quantile(1.0), LOG_TAU_MAX);
    }

    #[test]
    fn binary_search_quantile_matches_linear_scan() {
        // The pre-PR2 forward scan, kept verbatim as the semantics oracle.
        let linear = |cdf: &EmissionCdf, p: f64| -> f64 {
            let p = p.clamp(0.0, 1.0);
            for pair in cdf.knots.windows(2) {
                let (x0, p0) = pair[0];
                let (x1, p1) = pair[1];
                if p <= p1 {
                    if p1 == p0 {
                        return x0;
                    }
                    return x0 + (x1 - x0) * (p - p0) / (p1 - p0);
                }
            }
            LOG_TAU_MAX
        };
        let e = ensemble();
        let cdf = e.emission_cdf();
        for i in 0..=10_000 {
            let p = i as f64 / 10_000.0;
            assert_eq!(
                cdf.quantile(p).to_bits(),
                linear(cdf, p).to_bits(),
                "quantile({p}) diverged from the linear scan"
            );
        }
        // Hit every knot probability exactly (the boundary cases).
        for &(_, pk) in &cdf.knots {
            assert_eq!(cdf.quantile(pk).to_bits(), linear(cdf, pk).to_bits());
        }
    }

    #[test]
    fn stress_magnitude_matches_analytic_law() {
        let mut e = ensemble();
        e.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        let w = e.delta_vth_mv();
        assert!((w - 50.0).abs() < 2.5, "24 h wearout = {w} mV");
    }

    #[test]
    fn extended_deep_recovery_leaves_permanent_residue() {
        // Paper: even with recovery "much longer than 6 hours" under
        // condition 4, >27 % cannot be recovered after a 24 h stress.
        let mut e = ensemble();
        e.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        let w0 = e.delta_vth_mv();
        e.recover(
            Seconds::from_hours(48.0),
            RecoveryCondition::ACTIVE_ACCELERATED,
        );
        let recovered = (w0 - e.delta_vth_mv()) / w0;
        assert!(recovered < 0.80, "48 h deep recovery removed {recovered}");
        assert!(recovered > 0.70);
    }

    #[test]
    fn scheduled_recovery_prevents_permanent_component() {
        // Fig. 4 at trap granularity: 1 h : 1 h cycling leaves almost no
        // consolidated occupancy, continuous stress leaves a lot.
        let fresh = ensemble();

        let mut continuous = fresh.clone();
        continuous.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        let p_cont = continuous.permanent_mv();

        let mut cycled = fresh;
        for _ in 0..24 {
            cycled.stress(Seconds::from_hours(1.0), StressCondition::ACCELERATED);
            cycled.recover(
                Seconds::from_hours(1.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
        }
        let p_cyc = cycled.permanent_mv();
        assert!(
            p_cyc < 0.2 * p_cont,
            "cycled permanent {p_cyc} vs continuous {p_cont}"
        );
    }

    #[test]
    fn passive_recovery_is_slow() {
        let mut e = ensemble();
        e.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        let w0 = e.delta_vth_mv();
        e.recover(Seconds::from_hours(6.0), RecoveryCondition::PASSIVE);
        let r = (w0 - e.delta_vth_mv()) / w0;
        assert!(r < 0.02, "passive recovery {r}");
    }

    #[test]
    fn recovery_ordering_matches_conditions() {
        let mut stressed = ensemble();
        stressed.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        let w0 = stressed.delta_vth_mv();
        let mut rs = Vec::new();
        for cond in RecoveryCondition::table_one() {
            let mut d = stressed.clone();
            d.recover(Seconds::from_hours(6.0), cond);
            rs.push((w0 - d.delta_vth_mv()) / w0);
        }
        assert!(
            rs[0] < rs[1] && rs[1] < rs[3] && rs[0] < rs[2] && rs[2] < rs[3],
            "{rs:?}"
        );
    }

    #[test]
    fn variation_changes_but_does_not_break_the_ensemble() {
        let mut rng = seeded_rng(42, "cet-variation");
        let base = ensemble();
        let varied = base.clone().with_variation(0.3, &mut rng);
        assert_eq!(varied.len(), base.len());
        let mut a = base.clone();
        let mut b = varied;
        a.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        b.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        let (wa, wb) = (a.delta_vth_mv(), b.delta_vth_mv());
        assert!(wa != wb);
        assert!(
            (wa - wb).abs() / wa < 0.2,
            "variation too large: {wa} vs {wb}"
        );
    }

    #[test]
    fn variation_rebuilds_the_rate_tables() {
        // The jittered ensemble must behave identically whether its rate
        // tables were rebuilt (the kernel path) or derived on the fly (the
        // scalar reference path, which reads only the log-τ columns).
        let mut rng = seeded_rng(7, "cet-variation-tables");
        let varied = ensemble().with_variation(0.3, &mut rng);
        let mut fast = varied.clone();
        let mut reference = varied;
        fast.stress(Seconds::from_hours(6.0), StressCondition::ACCELERATED);
        reference.stress_reference(Seconds::from_hours(6.0), StressCondition::ACCELERATED);
        assert!(
            rel_diff(fast.delta_vth_mv(), reference.delta_vth_mv()) < 1e-12,
            "stale rate tables after with_variation"
        );
    }

    #[test]
    fn occupancy_stays_in_unit_interval() {
        let mut e = ensemble();
        for _ in 0..10 {
            e.stress(Seconds::from_hours(5.0), StressCondition::ACCELERATED);
            e.recover(
                Seconds::from_hours(1.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
        }
        let (soft, hard) = e.occupancy_columns();
        for (s, h) in soft.iter().zip(hard) {
            assert!(*s >= 0.0 && *h >= 0.0);
            assert!(s + h <= 1.0 + 1e-9);
        }
        assert!(e.mean_occupancy().value() <= 1.0);
    }

    #[test]
    fn calibration_fit_is_memoized() {
        // A trap count no other test or bench uses, so both constructions
        // below resolve against this test's own cache entry.
        let targets = TableOneTargets::measurement_column();
        let before = calibration_fit_runs();
        let a = TrapEnsemble::calibrated_shared(777, &targets).unwrap();
        let b = TrapEnsemble::calibrated_shared(777, &targets).unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "second construction must be a cache hit"
        );
        assert!(
            calibration_fit_runs() > before,
            "first construction must run the fit"
        );
        // The cloning constructor resolves against the same entry.
        let c = TrapEnsemble::calibrated(777, &targets).unwrap();
        assert_eq!(c, *a);
    }

    #[test]
    fn soa_kernel_matches_scalar_reference_tightly() {
        // Kernel and scalar reference share the adaptive schedule; the only
        // differences are float reassociation, `10^−x` vs `1/10^x`, and
        // `exp_m1` vs `1 − exp` — each bounded by an ulp or two per step,
        // so the aggregates must agree far inside 1e-12 relative.
        let mut fast = ensemble();
        let mut reference = fast.clone();
        for hours in [0.2, 1.0, 6.0, 24.0] {
            fast.stress(Seconds::from_hours(hours), StressCondition::ACCELERATED);
            reference.stress_reference(Seconds::from_hours(hours), StressCondition::ACCELERATED);
            let (wf, wr) = (fast.delta_vth_mv(), reference.delta_vth_mv());
            assert!(
                rel_diff(wf, wr) < 1e-12,
                "kernel {wf} vs reference {wr} after {hours} h stress"
            );
            let (pf, pr) = (fast.permanent_mv(), reference.permanent_mv());
            assert!(
                (pf - pr).abs() <= 1e-12 * pr.abs().max(1.0),
                "permanent {pf} vs {pr}"
            );
            fast.recover(
                Seconds::from_minutes(30.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
            reference.recover_reference(
                Seconds::from_minutes(30.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
            assert!(
                rel_diff(fast.delta_vth_mv(), reference.delta_vth_mv()) < 1e-12,
                "post-recovery divergence after {hours} h"
            );
        }
    }

    #[test]
    fn simd_and_scalar_backends_are_bit_identical() {
        // The dispatch!-generated kernels compile one body twice; flipping
        // the backend mid-process must not change a single bit of any
        // occupancy column (this also makes the flip safe while other
        // tests run concurrently).
        let run = || {
            let mut e = ensemble();
            e.stress(Seconds::from_hours(6.0), StressCondition::ACCELERATED);
            e.recover(
                Seconds::from_hours(1.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
            e.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
            e.recover(Seconds::from_hours(6.0), RecoveryCondition::PASSIVE);
            e
        };
        let auto = run();
        dh_simd::force_scalar(true);
        let scalar = run();
        dh_simd::force_scalar(false);
        let (sa, ha) = auto.occupancy_columns();
        let (ss, hs) = scalar.occupancy_columns();
        for i in 0..sa.len() {
            assert_eq!(sa[i].to_bits(), ss[i].to_bits(), "soft occupancy lane {i}");
            assert_eq!(ha[i].to_bits(), hs[i].to_bits(), "hard occupancy lane {i}");
        }
    }

    #[test]
    fn pr2_baseline_kernel_stays_within_tolerance() {
        // The retained PR 2 kernel (libm exp_m1/exp) and the SIMD
        // polynomial kernel differ by a few ulp per step; the aggregates
        // must stay inside the same 1e-12 budget as the scalar reference.
        let mut new = ensemble();
        let mut pr2 = ensemble();
        for _ in 0..4 {
            new.stress(Seconds::from_hours(6.0), StressCondition::ACCELERATED);
            pr2.stress_pr2(Seconds::from_hours(6.0), StressCondition::ACCELERATED);
            new.recover(
                Seconds::from_minutes(30.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
            pr2.recover_pr2(
                Seconds::from_minutes(30.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
        }
        assert!(
            rel_diff(new.delta_vth_mv(), pr2.delta_vth_mv()) < 1e-12,
            "SIMD {} vs pr2 {}",
            new.delta_vth_mv(),
            pr2.delta_vth_mv()
        );
        assert!(
            (new.permanent_mv() - pr2.permanent_mv()).abs()
                <= 1e-12 * pr2.permanent_mv().abs().max(1.0),
            "permanent diverged"
        );
    }

    #[test]
    fn pr1_fixed_stride_kernel_stays_close() {
        // The PR 1 kernel steps at a fixed 900 s stride; the adaptive
        // schedule is coarser on quiet stretches. Capture under a constant
        // rate is exact at any step size, so only the gate/hardening
        // integration differs — the trajectories must stay within ~2 %.
        let mut adaptive = ensemble();
        let mut pr1 = adaptive.clone();
        adaptive.stress(Seconds::from_hours(6.0), StressCondition::ACCELERATED);
        pr1.stress_pr1(Seconds::from_hours(6.0), StressCondition::ACCELERATED);
        assert!(
            rel_diff(adaptive.delta_vth_mv(), pr1.delta_vth_mv()) < 0.02,
            "adaptive {} vs pr1 {}",
            adaptive.delta_vth_mv(),
            pr1.delta_vth_mv()
        );
    }

    #[test]
    fn adaptive_stepping_is_step_size_independent() {
        // One 24 h call (≈62 adaptive steps) vs 96 fine calls: the
        // error-bounded schedule must keep the trajectories together.
        let mut coarse = ensemble();
        coarse.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        let mut fine = ensemble();
        for _ in 0..96 {
            fine.stress(Seconds::from_minutes(15.0), StressCondition::ACCELERATED);
        }
        assert!(
            rel_diff(coarse.delta_vth_mv(), fine.delta_vth_mv()) < 0.02,
            "coarse {} vs fine {}",
            coarse.delta_vth_mv(),
            fine.delta_vth_mv()
        );
        assert!(
            rel_diff(coarse.permanent_mv(), fine.permanent_mv()) < 0.10,
            "coarse permanent {} vs fine {}",
            coarse.permanent_mv(),
            fine.permanent_mv()
        );
    }

    #[test]
    fn quiet_intervals_take_a_single_step() {
        let params = PermanentParams::default();
        // 30 s from a fresh window: gate(30 s) ≈ (30/46800)² ≪ 1e-6.
        let (steps, sub) = stress_schedule(30.0, 0.0, &params);
        assert_eq!(steps, 1);
        assert_eq!(sub, 30.0);
        // 6 h from a fresh window needs the gate resolved.
        let (steps, _) = stress_schedule(6.0 * 3600.0, 0.0, &params);
        assert!(steps > 1 && steps <= MAX_SUB_STEPS, "steps = {steps}");
        // Degenerate decade-long call stays bounded.
        let (steps, _) = stress_schedule(3.15e8, 0.0, &params);
        assert!(steps <= MAX_SUB_STEPS);
    }

    #[test]
    fn wear_model_trait_routes_to_inherent_methods() {
        fn age<W: WearModel>(w: &mut W) -> (f64, f64) {
            w.stress(Seconds::from_hours(6.0), StressCondition::ACCELERATED);
            w.recover(
                Seconds::from_hours(1.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
            (w.delta_vth_mv(), w.permanent_mv())
        }
        let mut via_trait = ensemble();
        let (w_t, p_t) = age(&mut via_trait);
        let mut direct = ensemble();
        direct.stress(Seconds::from_hours(6.0), StressCondition::ACCELERATED);
        direct.recover(
            Seconds::from_hours(1.0),
            RecoveryCondition::ACTIVE_ACCELERATED,
        );
        assert_eq!(w_t.to_bits(), direct.delta_vth_mv().to_bits());
        assert_eq!(p_t.to_bits(), direct.permanent_mv().to_bits());
    }

    #[test]
    fn zero_duration_operations_are_no_ops() {
        let mut e = ensemble();
        e.stress(Seconds::from_hours(1.0), StressCondition::ACCELERATED);
        let w = e.delta_vth_mv();
        e.stress(Seconds::ZERO, StressCondition::ACCELERATED);
        e.recover(Seconds::ZERO, RecoveryCondition::PASSIVE);
        assert_eq!(e.delta_vth_mv(), w);
    }
}
