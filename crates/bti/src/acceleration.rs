//! Recovery acceleration factor θ(V, T).
//!
//! The paper's central mechanism is that the *rate* of BTI recovery can be
//! scaled by orders of magnitude with two knobs: temperature (thermally
//! activated trap emission) and a negative gate–source voltage
//! (field-assisted de-trapping). We lump both into a single dimensionless
//! **acceleration factor** θ that multiplies the effective recovery time:
//!
//! ```text
//! θ(V, T) = exp( ℓ_T + ℓ_V − η · s_T · s_V )
//!   ℓ_T = (Ea_r / k_B) · (1/T₀ − 1/T)          (Arrhenius)
//!   ℓ_V = γ · max(0, −V)                        (field-assisted de-trapping)
//!   s_T = clamp(ℓ_T / ℓ_T⁴, 0, ∞), s_V = ℓ_V / ℓ_V⁴
//! ```
//!
//! where `ℓ_T⁴`, `ℓ_V⁴` are the values at the paper's condition No. 4
//! (110 °C, −0.3 V) and η is an interaction (sub-multiplicativity) term: the
//! measured condition-4 recovery is less than the product of the individual
//! temperature-only and voltage-only gains would predict, because the two
//! knobs partly address the same trap population.
//!
//! The three constants (`Ea_r`, `γ`, `η`) are solved in closed form from
//! Table I by [`crate::calibration`]. The resulting effective activation
//! energy is larger than single-trap physical values — it lumps chamber,
//! self-heating and measurement effects, as documented in DESIGN.md.

use dh_units::constants::BOLTZMANN_EV_PER_K;
use dh_units::{Kelvin, Volts};

use crate::condition::RecoveryCondition;

/// Parameters of the recovery acceleration factor θ(V, T).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryAcceleration {
    /// Effective activation energy of recovery, eV.
    pub ea_ev: f64,
    /// Field-assisted de-trapping coefficient, 1/V.
    pub gamma_per_volt: f64,
    /// Interaction (sub-multiplicativity) coefficient, dimensionless.
    pub eta: f64,
    /// Reference (room) temperature T₀.
    pub reference_temperature: Kelvin,
    /// Calibration anchor temperature (condition 4), used to normalise the
    /// interaction term.
    pub anchor_temperature: Kelvin,
    /// Calibration anchor reverse bias (condition 4).
    pub anchor_reverse_bias: Volts,
}

impl RecoveryAcceleration {
    /// The log-domain temperature term ℓ_T.
    fn log_thermal(&self, t: Kelvin) -> f64 {
        (self.ea_ev / BOLTZMANN_EV_PER_K)
            * (1.0 / self.reference_temperature.value() - 1.0 / t.value())
    }

    /// The log-domain voltage term ℓ_V.
    fn log_voltage(&self, reverse_bias: Volts) -> f64 {
        self.gamma_per_volt * reverse_bias.value().max(0.0)
    }

    /// The acceleration factor θ for a recovery condition.
    ///
    /// θ = 1 at the passive room-temperature baseline; θ < 1 below room
    /// temperature (recovery slows down in the cold).
    pub fn factor(&self, condition: RecoveryCondition) -> f64 {
        let lt = self.log_thermal(condition.temperature);
        let lv = self.log_voltage(condition.reverse_bias());
        let lt4 = self.log_thermal(self.anchor_temperature);
        let lv4 = self.log_voltage(self.anchor_reverse_bias);
        // Normalised interaction strengths; only cooperative (positive)
        // contributions interact.
        let st = if lt4 > 0.0 { (lt / lt4).max(0.0) } else { 0.0 };
        let sv = if lv4 > 0.0 { (lv / lv4).max(0.0) } else { 0.0 };
        (lt + lv - self.eta * st * sv).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_units::Celsius;

    fn example() -> RecoveryAcceleration {
        RecoveryAcceleration {
            ea_ev: 2.2,
            gamma_per_volt: 52.0,
            eta: 5.3,
            reference_temperature: Celsius::new(20.0).to_kelvin(),
            anchor_temperature: Celsius::new(110.0).to_kelvin(),
            anchor_reverse_bias: Volts::new(0.3),
        }
    }

    #[test]
    fn passive_room_condition_has_unity_factor() {
        let a = example();
        let theta = a.factor(RecoveryCondition::PASSIVE);
        assert!((theta - 1.0).abs() < 1e-12, "theta = {theta}");
    }

    #[test]
    fn each_knob_increases_theta() {
        let a = example();
        let t1 = a.factor(RecoveryCondition::PASSIVE);
        let t2 = a.factor(RecoveryCondition::ACTIVE);
        let t3 = a.factor(RecoveryCondition::ACCELERATED);
        let t4 = a.factor(RecoveryCondition::ACTIVE_ACCELERATED);
        assert!(t2 > t1);
        assert!(t3 > t2 || t3 > t1); // ordering of 2 vs 3 depends on calibration
        assert!(t4 > t2 && t4 > t3);
    }

    #[test]
    fn interaction_makes_combination_submultiplicative() {
        let a = example();
        let t2 = a.factor(RecoveryCondition::ACTIVE);
        let t3 = a.factor(RecoveryCondition::ACCELERATED);
        let t4 = a.factor(RecoveryCondition::ACTIVE_ACCELERATED);
        assert!(t4 < t2 * t3, "t4 {t4} should be < t2*t3 {}", t2 * t3);
    }

    #[test]
    fn cold_recovery_decelerates() {
        let a = example();
        let cold = RecoveryCondition::new(Volts::new(0.0), Celsius::new(-20.0));
        assert!(a.factor(cold) < 1.0);
    }

    #[test]
    fn positive_gate_voltage_contributes_nothing() {
        let a = example();
        let weird = RecoveryCondition::new(Volts::new(0.5), Celsius::new(20.0));
        assert!((a.factor(weird) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn theta_is_monotone_in_reverse_bias_and_temperature() {
        let a = example();
        let mut prev = 0.0;
        for mv in [0.0, 100.0, 200.0, 300.0, 400.0] {
            let c = RecoveryCondition::new(Volts::new(-mv / 1000.0), Celsius::new(20.0));
            let theta = a.factor(c);
            assert!(theta >= prev);
            prev = theta;
        }
        let mut prev = 0.0;
        for t in [20.0, 50.0, 80.0, 110.0, 140.0] {
            let c = RecoveryCondition::new(Volts::new(0.0), Celsius::new(t));
            let theta = a.factor(c);
            assert!(theta >= prev);
            prev = theta;
        }
    }
}
