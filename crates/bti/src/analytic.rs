//! The analytic BTI model (the paper's Table I "Model" column).
//!
//! Three ingredients:
//!
//! 1. **Stress (wearout generation)** — a power law
//!    `ΔVth(t) = A_eff · t^n` with `n = 1/6`, the classic reaction–diffusion
//!    exponent. `A_eff` scales with stress voltage and temperature via an
//!    exponential voltage-acceleration law and an Arrhenius factor, so
//!    accelerated-test results can be de-rated to use conditions.
//! 2. **Recovery (universal relaxation)** — the Kaczer universal-relaxation
//!    form `r(ξ_eff) = 1/(1 + B·ξ_eff^{−β})` with
//!    `ξ_eff = θ(V,T) · t_rec / t_stress`, where θ is the activation /
//!    acceleration factor of [`crate::acceleration`]. `B`, γ, `Ea_r`, η are
//!    calibrated in closed form from Table I by [`crate::calibration`].
//! 3. **Permanent component** — a slowly-growing fraction of the wearout
//!    becomes permanent; it *consolidates* (hardens) with a ~2 h time
//!    constant, after which no recovery condition can remove it. Freshly
//!    generated ("soft") permanent damage **can** be annealed, but only by
//!    deep (active + accelerated) recovery applied in time — this is the
//!    mechanism behind the paper's Fig. 4 result that a balanced 1 h : 1 h
//!    stress/recovery schedule keeps the permanent component at ~0 while a
//!    one-time recovery after 24 h of stress is stuck above ~27 %.

use dh_units::arrhenius;
use dh_units::{Fraction, Seconds};

use crate::calibration::{self, TableOneTargets, UniversalRelaxation, DEFAULT_BETA};
use crate::condition::{RecoveryCondition, StressCondition};
use crate::error::BtiError;

/// Parameters of the permanent-component dynamics.
///
/// The *permanent fraction* of total wearout follows
/// `p(t_w) = p_max · (1 − exp(−(t_w/τ_p)^m))` in the continuous-stress window
/// time `t_w`; the superlinear onset (`m = 2`) captures that permanent damage
/// is a secondary process seeded by sustained trap occupancy — short stress
/// windows generate almost none, which is exactly why the paper's in-time
/// scheduled recovery avoids it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PermanentParams {
    /// Saturated permanent fraction of total wearout.
    pub p_max: f64,
    /// Characteristic window time of permanent-damage onset.
    pub tau_onset: Seconds,
    /// Onset shape exponent (superlinear for m > 1).
    pub m: f64,
    /// Consolidation (hardening) time constant: soft permanent damage
    /// becomes unrecoverable with this time constant under continued stress.
    pub tau_harden: Seconds,
    /// Annealing time constant of *soft* permanent damage under the deepest
    /// calibrated recovery condition (condition 4). Scales as θ/θ₄ for other
    /// conditions, so passive recovery effectively never anneals it.
    pub tau_soft_anneal: Seconds,
    /// Decay time constant of the continuous-stress window under deep
    /// recovery (precursor reset).
    pub tau_window_reset: Seconds,
}

impl Default for PermanentParams {
    fn default() -> Self {
        Self {
            // p(24 h) ≈ 0.276, matching Table I's >27 % unrecoverable
            // component after the 24 h accelerated stress.
            p_max: 0.285,
            tau_onset: Seconds::from_hours(13.0),
            m: 2.0,
            tau_harden: Seconds::from_hours(2.0),
            tau_soft_anneal: Seconds::new(1200.0),
            tau_window_reset: Seconds::new(1200.0),
        }
    }
}

/// Parameters of the stress (generation) power law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressLaw {
    /// Prefactor: ΔVth in millivolts at 1 s of reference accelerated stress.
    pub a_mv: f64,
    /// Time exponent n (≈ 1/6 for reaction–diffusion BTI).
    pub n: f64,
    /// Voltage acceleration coefficient, 1/V (ΔVth ∝ exp(γ_s·V)).
    pub gamma_stress_per_volt: f64,
    /// Effective activation energy of wearout generation, eV (weakly
    /// temperature-activated compared to recovery).
    pub ea_stress_ev: f64,
    /// Reference (accelerated) stress condition at which `a_mv` is defined.
    pub reference: StressCondition,
}

impl Default for StressLaw {
    fn default() -> Self {
        Self {
            // ΔVth(24 h) = a · 86400^(1/6) ≈ 50 mV at the reference
            // accelerated condition — a typical magnitude for a 40 nm
            // accelerated BTI test.
            a_mv: 50.0 / 86_400f64.powf(1.0 / 6.0),
            n: 1.0 / 6.0,
            gamma_stress_per_volt: 6.0,
            ea_stress_ev: 0.08,
            reference: StressCondition::ACCELERATED,
        }
    }
}

impl StressLaw {
    /// The amplitude scaling of wearout generation at `cond` relative to the
    /// reference accelerated condition (1.0 at the reference; < 1 at use
    /// conditions).
    pub fn amplitude_scale(&self, cond: StressCondition) -> f64 {
        // At the reference condition both exponents are exactly zero, so
        // skip the two `exp`s (hot in equivalent-age reconstruction).
        if cond == self.reference {
            return 1.0;
        }
        let dv = cond.gate_voltage.value() - self.reference.gate_voltage.value();
        let v_term = (self.gamma_stress_per_volt * dv).exp();
        let t_term = arrhenius::acceleration_factor(
            self.ea_stress_ev,
            self.reference.temperature,
            cond.temperature,
        );
        v_term * t_term
    }

    /// Fresh-device wearout in millivolts after `t` of stress at `cond`.
    pub fn wearout_mv(&self, t: Seconds, cond: StressCondition) -> f64 {
        if t.value() <= 0.0 {
            return 0.0;
        }
        self.a_mv * self.amplitude_scale(cond) * t.value().powf(self.n)
    }

    /// The equivalent stress age (at condition `cond`) that would produce a
    /// given wearout level — the inverse of [`Self::wearout_mv`].
    pub fn equivalent_age(&self, wearout_mv: f64, cond: StressCondition) -> Seconds {
        if wearout_mv <= 0.0 {
            return Seconds::ZERO;
        }
        let a = self.a_mv * self.amplitude_scale(cond);
        Seconds::new((wearout_mv / a).powf(1.0 / self.n))
    }

    /// Advances a wearout level by `dt` of stress at `cond`: the composition
    /// of [`Self::equivalent_age`] and [`Self::wearout_mv`], evaluating the
    /// (two-`exp`) amplitude scale once instead of twice. Bit-identical to
    /// the composition.
    pub fn advance_wearout(&self, current_mv: f64, dt: Seconds, cond: StressCondition) -> f64 {
        let a = self.a_mv * self.amplitude_scale(cond);
        let age = if current_mv <= 0.0 {
            Seconds::ZERO
        } else {
            Seconds::new((current_mv / a).powf(1.0 / self.n))
        };
        a * (age + dt).value().powf(self.n)
    }
}

/// The calibrated analytic BTI model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticBtiModel {
    relaxation: UniversalRelaxation,
    stress_law: StressLaw,
    permanent: PermanentParams,
    /// θ at the deepest calibrated condition (condition 4), used to
    /// normalise soft-permanent annealing rates.
    theta4: f64,
}

impl AnalyticBtiModel {
    /// Builds the model calibrated to the paper's Table I model column with
    /// default stress-law and permanent-component parameters.
    ///
    /// # Panics
    ///
    /// Never panics: the built-in targets are known-solvable (covered by
    /// tests).
    pub fn paper_calibrated() -> Self {
        Self::from_targets(&TableOneTargets::model_column())
            .expect("paper targets are solvable by construction")
    }

    /// Builds the model from custom Table I-style calibration targets.
    ///
    /// # Errors
    ///
    /// Returns [`BtiError::UnsolvableCalibration`] for non-monotone or
    /// degenerate targets.
    pub fn from_targets(targets: &TableOneTargets) -> Result<Self, BtiError> {
        let relaxation = calibration::solve(targets, DEFAULT_BETA)?;
        let theta4 = relaxation.acceleration.factor(RecoveryCondition {
            gate_voltage: -targets.reverse_bias,
            temperature: targets.hot,
        });
        Ok(Self {
            relaxation,
            stress_law: StressLaw::default(),
            permanent: PermanentParams::default(),
            theta4,
        })
    }

    /// The calibrated universal-relaxation parameters.
    pub fn relaxation(&self) -> &UniversalRelaxation {
        &self.relaxation
    }

    /// The stress (generation) law.
    pub fn stress_law(&self) -> &StressLaw {
        &self.stress_law
    }

    /// The permanent-component parameters.
    pub fn permanent_params(&self) -> &PermanentParams {
        &self.permanent
    }

    /// Replaces the stress law (builder-style).
    #[must_use]
    pub fn with_stress_law(mut self, law: StressLaw) -> Self {
        self.stress_law = law;
        self
    }

    /// Replaces the permanent-component parameters (builder-style).
    #[must_use]
    pub fn with_permanent_params(mut self, params: PermanentParams) -> Self {
        self.permanent = params;
        self
    }

    /// The recovery acceleration factor θ(V, T) for a condition.
    pub fn theta(&self, condition: RecoveryCondition) -> f64 {
        self.relaxation.acceleration.factor(condition)
    }

    /// θ at the deepest calibrated (condition 4) recovery condition.
    pub fn theta4(&self) -> f64 {
        self.theta4
    }

    /// The permanent fraction of total wearout after a continuous stress
    /// window of length `t_w`.
    pub fn permanent_fraction(&self, t_w: Seconds) -> Fraction {
        let p = &self.permanent;
        if t_w.value() <= 0.0 {
            return Fraction::ZERO;
        }
        let base = t_w / p.tau_onset;
        // m = 2 is the default shape and this sits inside every stress
        // step, so square directly instead of `powf`.
        let x = if p.m == 2.0 {
            base * base
        } else {
            base.powf(p.m)
        };
        Fraction::clamped(p.p_max * (1.0 - (-x).exp()))
    }

    /// The consolidated ("hard") share of the permanent component after a
    /// continuous stress window `t_w`, computed by integrating the hardening
    /// kernel over the permanent-generation history.
    pub fn hardened_share(&self, t_w: Seconds) -> Fraction {
        let p_total = self.permanent_fraction(t_w).value();
        if p_total <= 0.0 {
            return Fraction::ZERO;
        }
        // H = ∫₀ᵗ p'(u) (1 − e^{−(t−u)/τ_h}) du / p(t)
        let steps = 400;
        let dt = t_w.value() / steps as f64;
        let mut hardened = 0.0;
        let mut prev_p = 0.0;
        for i in 1..=steps {
            let u = i as f64 * dt;
            let p_u = self.permanent_fraction(Seconds::new(u)).value();
            let dp = p_u - prev_p;
            prev_p = p_u;
            let age = t_w.value() - (u - 0.5 * dt);
            hardened += dp * (1.0 - (-age / self.permanent.tau_harden.value()).exp());
        }
        Fraction::clamped(hardened / p_total)
    }

    /// One-shot recovery fraction: the fraction of wearout recovered after
    /// `recovery_time` of recovery at `condition`, following a continuous
    /// stress of `stress_time` (the paper's Table I protocol).
    ///
    /// The result is the universal-relaxation fraction capped by the
    /// (condition-dependent) unrecoverable permanent component.
    pub fn recovery_fraction(
        &self,
        stress_time: Seconds,
        recovery_time: Seconds,
        condition: RecoveryCondition,
    ) -> Fraction {
        if stress_time.value() <= 0.0 {
            return Fraction::ZERO;
        }
        let theta = self.theta(condition);
        let xi_eff = theta * (recovery_time / stress_time);
        let r_univ = self.relaxation.recovery_fraction_at(xi_eff).value();

        // Unrecoverable floor: hardened permanent damage plus soft permanent
        // damage that this condition fails to anneal within recovery_time.
        let p_total = self.permanent_fraction(stress_time).value();
        let hard = self.hardened_share(stress_time).value();
        let soft_remaining = (-(theta / self.theta4) * recovery_time.value()
            / self.permanent.tau_soft_anneal.value())
        .exp();
        let unrecoverable = p_total * (hard + (1.0 - hard) * soft_remaining);
        Fraction::clamped(r_univ.min(1.0 - unrecoverable))
    }

    /// The asymptotic (infinite-recovery-time) recovery fraction at the
    /// deepest recovery condition — everything except the hardened permanent
    /// component.
    pub fn asymptotic_recovery(&self, stress_time: Seconds) -> Fraction {
        let p_total = self.permanent_fraction(stress_time).value();
        let hard = self.hardened_share(stress_time).value();
        Fraction::clamped(1.0 - p_total * hard)
    }
}

impl Default for AnalyticBtiModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_units::{Celsius, Volts};

    const STRESS_24H: Seconds = Seconds::new(24.0 * 3600.0);
    const RECOVERY_6H: Seconds = Seconds::new(6.0 * 3600.0);

    #[test]
    fn table_one_model_column_is_reproduced() {
        let model = AnalyticBtiModel::paper_calibrated();
        let targets = [1.0, 14.4, 29.2, 72.7];
        for (cond, want) in RecoveryCondition::table_one().iter().zip(targets) {
            let got = model
                .recovery_fraction(STRESS_24H, RECOVERY_6H, *cond)
                .as_percent();
            assert!(
                (got - want).abs() < 0.5,
                "{cond}: got {got:.2}% want {want}%"
            );
        }
    }

    #[test]
    fn permanent_cap_does_not_clip_condition_four() {
        // The calibration puts the 6 h condition-4 point (72.7 %) just below
        // the permanent cap; if the cap clipped it, Table I would be off.
        let model = AnalyticBtiModel::paper_calibrated();
        let cap = 1.0
            - model.permanent_fraction(STRESS_24H).value()
                * model.hardened_share(STRESS_24H).value();
        assert!(cap > 0.727, "cap {cap} must exceed the condition-4 target");
    }

    #[test]
    fn extended_deep_recovery_saturates_near_27_percent_permanent() {
        // Paper: "there is still a permanent component (>27%) which cannot
        // be recovered with the extended recovery period (much longer than
        // 6 hours)".
        let model = AnalyticBtiModel::paper_calibrated();
        let r_48h = model.recovery_fraction(
            STRESS_24H,
            Seconds::from_hours(48.0),
            RecoveryCondition::ACTIVE_ACCELERATED,
        );
        assert!(
            r_48h.as_percent() < 78.0,
            "extended recovery should saturate below ~78%, got {:.1}%",
            r_48h.as_percent()
        );
        assert!(r_48h.as_percent() > 72.0);
    }

    #[test]
    fn short_stress_produces_negligible_permanent_damage() {
        // The Fig. 4 mechanism: a 1 h stress window generates almost no
        // permanent damage, so in-time recovery can keep the device fresh.
        let model = AnalyticBtiModel::paper_calibrated();
        let p_1h = model.permanent_fraction(Seconds::from_hours(1.0)).value();
        let p_24h = model.permanent_fraction(STRESS_24H).value();
        assert!(p_1h < 0.005, "p(1h) = {p_1h}");
        assert!((p_24h - 0.276).abs() < 0.01, "p(24h) = {p_24h}");
    }

    #[test]
    fn recovery_fraction_monotone_in_recovery_time() {
        let model = AnalyticBtiModel::paper_calibrated();
        let mut prev = Fraction::ZERO;
        for hours in [0.5, 1.0, 2.0, 6.0, 12.0, 24.0] {
            let r = model.recovery_fraction(
                STRESS_24H,
                Seconds::from_hours(hours),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn recovery_fraction_zero_for_degenerate_inputs() {
        let model = AnalyticBtiModel::paper_calibrated();
        let r = model.recovery_fraction(Seconds::ZERO, RECOVERY_6H, RecoveryCondition::PASSIVE);
        assert_eq!(r, Fraction::ZERO);
        let r = model.recovery_fraction(STRESS_24H, Seconds::ZERO, RecoveryCondition::PASSIVE);
        assert_eq!(r, Fraction::ZERO);
    }

    #[test]
    fn stress_law_reference_wearout_is_50mv_at_24h() {
        let law = StressLaw::default();
        let w = law.wearout_mv(STRESS_24H, StressCondition::ACCELERATED);
        assert!((w - 50.0).abs() < 1e-9, "w = {w}");
    }

    #[test]
    fn stress_law_derates_at_use_conditions() {
        let law = StressLaw::default();
        let w_use = law.wearout_mv(STRESS_24H, StressCondition::NOMINAL_USE);
        let w_acc = law.wearout_mv(STRESS_24H, StressCondition::ACCELERATED);
        assert!(w_use < 0.5 * w_acc, "use {w_use} vs accelerated {w_acc}");
        assert!(w_use > 0.0);
    }

    #[test]
    fn equivalent_age_round_trips() {
        let law = StressLaw::default();
        let cond = StressCondition::ACCELERATED;
        for t in [60.0, 3600.0, 86_400.0] {
            let w = law.wearout_mv(Seconds::new(t), cond);
            let age = law.equivalent_age(w, cond);
            assert!((age.value() - t).abs() / t < 1e-9);
        }
        assert_eq!(law.equivalent_age(0.0, cond), Seconds::ZERO);
        assert_eq!(law.equivalent_age(-1.0, cond), Seconds::ZERO);
    }

    #[test]
    fn hardened_share_increases_with_window() {
        let model = AnalyticBtiModel::paper_calibrated();
        let h1 = model.hardened_share(Seconds::from_hours(1.0)).value();
        let h24 = model.hardened_share(STRESS_24H).value();
        assert!(h1 < h24);
        assert!(h24 > 0.85, "h24 = {h24}");
        assert_eq!(model.hardened_share(Seconds::ZERO), Fraction::ZERO);
    }

    #[test]
    fn theta_ordering_matches_conditions() {
        let model = AnalyticBtiModel::paper_calibrated();
        let t = RecoveryCondition::table_one().map(|c| model.theta(c));
        assert!((t[0] - 1.0).abs() < 1e-9);
        assert!(t[1] > 1e5 && t[1] < 1e8, "theta_V = {}", t[1]);
        assert!(t[2] > 1e7 && t[2] < 1e10, "theta_T = {}", t[2]);
        assert!(t[3] > 1e12 && t[3] < 1e15, "theta4 = {}", t[3]);
        assert_eq!(t[3], model.theta4());
    }

    #[test]
    fn intermediate_conditions_interpolate_smoothly() {
        let model = AnalyticBtiModel::paper_calibrated();
        // A 65 °C, −0.15 V condition should land strictly between passive
        // and condition 4.
        let mid = RecoveryCondition::new(Volts::new(-0.15), Celsius::new(65.0));
        let r = model.recovery_fraction(STRESS_24H, RECOVERY_6H, mid);
        assert!(r.as_percent() > 1.0 && r.as_percent() < 72.7, "r = {r}");
    }
}
