//! Stress and recovery operating conditions.
//!
//! The paper's Fig. 2(a) defines four BTI recovery conditions, combinations
//! of two knobs:
//!
//! | # | name | gate voltage | temperature |
//! |---|------|--------------|-------------|
//! | 1 | passive | 0 V | 20 °C (room) |
//! | 2 | active | −0.3 V | 20 °C |
//! | 3 | accelerated | 0 V | 110 °C |
//! | 4 | active + accelerated | −0.3 V | 110 °C |

use core::fmt;

use dh_units::{Celsius, Kelvin, Volts};

/// The condition applied during a BTI *stress* phase.
///
/// For an nMOS/pMOS under BTI stress the transistor is ON with a large
/// (magnitude) gate overdrive; elevated temperature accelerates trap capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressCondition {
    /// Gate overdrive magnitude applied during stress.
    pub gate_voltage: Volts,
    /// Device temperature during stress.
    pub temperature: Kelvin,
}

impl StressCondition {
    /// The paper's accelerated stress condition ("high voltage and
    /// temperature"): we use 110 °C with a 1.2 V overdrive, typical for
    /// accelerated BTI testing of a 40 nm FPGA fabric.
    pub const ACCELERATED: Self = Self {
        gate_voltage: Volts::new(1.2),
        temperature: Kelvin::new(110.0 + 273.15),
    };

    /// A representative nominal use condition (0.9 V, 60 °C), used by the
    /// system-level lifetime simulations to de-rate the accelerated results.
    pub const NOMINAL_USE: Self = Self {
        gate_voltage: Volts::new(0.9),
        temperature: Kelvin::new(60.0 + 273.15),
    };

    /// Creates a stress condition from paper-style units.
    pub fn new(gate_voltage: Volts, temperature: Celsius) -> Self {
        Self {
            gate_voltage,
            temperature: temperature.to_kelvin(),
        }
    }

    /// Whether both fields are finite. Kernel entry points reject
    /// non-finite conditions (a poisoned sensor or thermal solve must not
    /// propagate NaN into the trap state).
    pub fn is_finite(self) -> bool {
        self.gate_voltage.value().is_finite() && self.temperature.value().is_finite()
    }
}

impl fmt::Display for StressCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stress {:.2} at {:.0}",
            self.gate_voltage,
            self.temperature.to_celsius()
        )
    }
}

/// The condition applied during a BTI *recovery* phase.
///
/// `gate_voltage` is the gate–source voltage of the recovering device:
/// `0 V` is conventional passive recovery (device simply OFF), negative
/// values turn the device "more off" and actively de-trap charge — the
/// paper's *active recovery*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryCondition {
    /// Gate–source voltage during recovery (≤ 0 activates recovery).
    pub gate_voltage: Volts,
    /// Device temperature during recovery.
    pub temperature: Kelvin,
}

impl RecoveryCondition {
    /// Table I condition No. 1: 20 °C and 0 V (passive recovery baseline).
    pub const PASSIVE: Self = Self {
        gate_voltage: Volts::new(0.0),
        temperature: Kelvin::new(20.0 + 273.15),
    };

    /// Table I condition No. 2: 20 °C and −0.3 V (active recovery).
    pub const ACTIVE: Self = Self {
        gate_voltage: Volts::new(-0.3),
        temperature: Kelvin::new(20.0 + 273.15),
    };

    /// Table I condition No. 3: 110 °C and 0 V (accelerated recovery).
    pub const ACCELERATED: Self = Self {
        gate_voltage: Volts::new(0.0),
        temperature: Kelvin::new(110.0 + 273.15),
    };

    /// Table I condition No. 4: 110 °C and −0.3 V (active + accelerated —
    /// the paper's "deep healing" condition).
    pub const ACTIVE_ACCELERATED: Self = Self {
        gate_voltage: Volts::new(-0.3),
        temperature: Kelvin::new(110.0 + 273.15),
    };

    /// Creates a recovery condition from paper-style units.
    pub fn new(gate_voltage: Volts, temperature: Celsius) -> Self {
        Self {
            gate_voltage,
            temperature: temperature.to_kelvin(),
        }
    }

    /// The four Table I conditions in paper order (No. 1–4).
    pub fn table_one() -> [Self; 4] {
        [
            Self::PASSIVE,
            Self::ACTIVE,
            Self::ACCELERATED,
            Self::ACTIVE_ACCELERATED,
        ]
    }

    /// The reverse-bias magnitude that activates recovery: `max(0, −Vgs)`.
    ///
    /// A positive gate voltage during "recovery" would be stress, not
    /// recovery; it contributes no activation.
    pub fn reverse_bias(self) -> Volts {
        if self.gate_voltage < Volts::ZERO {
            -self.gate_voltage
        } else {
            Volts::ZERO
        }
    }

    /// Whether this condition *activates* recovery (negative gate voltage).
    pub fn is_active(self) -> bool {
        self.gate_voltage < Volts::ZERO
    }

    /// Whether this condition *accelerates* recovery (temperature above the
    /// 20 °C room reference).
    pub fn is_accelerated(self) -> bool {
        self.temperature > Celsius::new(20.0).to_kelvin()
    }

    /// Whether both fields are finite. Kernel entry points reject
    /// non-finite conditions (a poisoned sensor or thermal solve must not
    /// propagate NaN into the trap state).
    pub fn is_finite(self) -> bool {
        self.gate_voltage.value().is_finite() && self.temperature.value().is_finite()
    }
}

impl fmt::Display for RecoveryCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovery {:.2} at {:.0}",
            self.gate_voltage,
            self.temperature.to_celsius()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_conditions_match_paper() {
        let conds = RecoveryCondition::table_one();
        assert_eq!(conds[0].gate_voltage, Volts::new(0.0));
        assert!((conds[0].temperature.to_celsius().value() - 20.0).abs() < 1e-9);
        assert_eq!(conds[1].gate_voltage, Volts::new(-0.3));
        assert!((conds[2].temperature.to_celsius().value() - 110.0).abs() < 1e-9);
        assert_eq!(conds[3].gate_voltage, Volts::new(-0.3));
        assert!((conds[3].temperature.to_celsius().value() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn reverse_bias_ignores_positive_gate_voltage() {
        let c = RecoveryCondition::new(Volts::new(0.2), Celsius::new(20.0));
        assert_eq!(c.reverse_bias(), Volts::ZERO);
        assert!(!c.is_active());
        assert_eq!(RecoveryCondition::ACTIVE.reverse_bias(), Volts::new(0.3));
    }

    #[test]
    fn activation_and_acceleration_flags() {
        assert!(!RecoveryCondition::PASSIVE.is_active());
        assert!(!RecoveryCondition::PASSIVE.is_accelerated());
        assert!(RecoveryCondition::ACTIVE.is_active());
        assert!(!RecoveryCondition::ACTIVE.is_accelerated());
        assert!(!RecoveryCondition::ACCELERATED.is_active());
        assert!(RecoveryCondition::ACCELERATED.is_accelerated());
        assert!(RecoveryCondition::ACTIVE_ACCELERATED.is_active());
        assert!(RecoveryCondition::ACTIVE_ACCELERATED.is_accelerated());
    }

    #[test]
    fn display_is_informative() {
        let s = RecoveryCondition::ACTIVE_ACCELERATED.to_string();
        assert!(s.contains("-0.30 V"));
        assert!(s.contains("110 °C"));
    }
}
