//! Device-to-device BTI variability: wearout and recovery statistics over
//! an ensemble of *devices* (each a perturbed trap ensemble).
//!
//! A guardband protects the *worst* device on the die, not the mean one.
//! This module samples a population of CET trap ensembles with
//! log-normally jittered trap parameters ([`TrapEnsemble::with_variation`])
//! runs them through a common stress/recovery history, and summarises the
//! ΔVth distribution — giving quantile-based guardbands and showing that
//! deep healing compresses not just the mean but the *spread* (every
//! device's recoverable population empties).

use dh_units::rng::seeded_rng;
use dh_units::Seconds;

use crate::cet::TrapEnsemble;
use crate::condition::{RecoveryCondition, StressCondition};
use crate::error::BtiError;

/// A population of varied BTI devices.
#[derive(Debug, Clone)]
pub struct DevicePopulation {
    devices: Vec<TrapEnsemble>,
}

/// Summary statistics of the population's ΔVth, millivolts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationStats {
    /// Mean shift.
    pub mean_mv: f64,
    /// Standard deviation.
    pub sigma_mv: f64,
    /// Minimum shift.
    pub min_mv: f64,
    /// Maximum (worst-device) shift.
    pub max_mv: f64,
}

impl DevicePopulation {
    /// Samples `n` devices: one calibrated master ensemble, jittered by
    /// `sigma_decades` of log-normal trap-parameter variation per device.
    ///
    /// # Errors
    ///
    /// Propagates [`BtiError`] from the master calibration, and rejects
    /// `n == 0`.
    pub fn sample(
        n: usize,
        traps_per_device: usize,
        sigma_decades: f64,
        seed: u64,
    ) -> Result<Self, BtiError> {
        if n == 0 {
            return Err(BtiError::EmptyEnsemble);
        }
        let master = TrapEnsemble::paper_calibrated(traps_per_device)?;
        let mut rng = seeded_rng(seed, "bti-device-population");
        let devices = (0..n)
            .map(|_| master.clone().with_variation(sigma_decades, &mut rng))
            .collect();
        Ok(Self { devices })
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the population is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Stresses every device.
    pub fn stress(&mut self, dt: Seconds, cond: StressCondition) {
        for d in &mut self.devices {
            d.stress(dt, cond);
        }
    }

    /// Recovers every device.
    pub fn recover(&mut self, dt: Seconds, cond: RecoveryCondition) {
        for d in &mut self.devices {
            d.recover(dt, cond);
        }
    }

    /// Current ΔVth statistics across the population.
    pub fn stats(&self) -> PopulationStats {
        let shifts: Vec<f64> = self
            .devices
            .iter()
            .map(TrapEnsemble::delta_vth_mv)
            .collect();
        let n = shifts.len() as f64;
        let mean = shifts.iter().sum::<f64>() / n;
        let var = shifts.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        PopulationStats {
            mean_mv: mean,
            sigma_mv: var.sqrt(),
            min_mv: shifts.iter().cloned().fold(f64::INFINITY, f64::min),
            max_mv: shifts.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// The `q`-quantile ΔVth across the population (e.g. `q = 0.95` for a
    /// 95th-percentile guardband basis).
    pub fn quantile_mv(&self, q: f64) -> f64 {
        let mut shifts: Vec<f64> = self
            .devices
            .iter()
            .map(TrapEnsemble::delta_vth_mv)
            .collect();
        shifts.sort_by(f64::total_cmp);
        let idx = ((q.clamp(0.0, 1.0)) * (shifts.len() - 1) as f64).round() as usize;
        shifts[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stressed_population() -> DevicePopulation {
        let mut p = DevicePopulation::sample(16, 800, 0.25, 11).unwrap();
        p.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        p
    }

    #[test]
    fn population_spreads_under_stress() {
        let p = stressed_population();
        let stats = p.stats();
        assert!(stats.sigma_mv > 0.1, "variation must show: {stats:?}");
        assert!(stats.max_mv > stats.mean_mv && stats.mean_mv > stats.min_mv);
        // Mean near the nominal 50 mV.
        assert!((stats.mean_mv - 50.0).abs() < 5.0, "mean {}", stats.mean_mv);
    }

    #[test]
    fn worst_device_sets_a_larger_guardband_than_the_mean() {
        let p = stressed_population();
        let stats = p.stats();
        let q95 = p.quantile_mv(0.95);
        assert!(q95 > stats.mean_mv);
        assert!(q95 <= stats.max_mv + 1e-12);
    }

    #[test]
    fn deep_healing_compresses_mean_and_spread() {
        let mut p = stressed_population();
        let before = p.stats();
        p.recover(
            Seconds::from_hours(6.0),
            RecoveryCondition::ACTIVE_ACCELERATED,
        );
        let after = p.stats();
        assert!(
            after.mean_mv < 0.4 * before.mean_mv,
            "{before:?} -> {after:?}"
        );
        // Even the worst healed device ends up better than the best
        // unhealed one — healing dominates the device-to-device spread.
        assert!(
            after.max_mv < before.min_mv,
            "worst healed {} vs best unhealed {}",
            after.max_mv,
            before.min_mv
        );
    }

    #[test]
    fn zero_variation_collapses_the_population() {
        let mut p = DevicePopulation::sample(6, 400, 0.0, 3).unwrap();
        p.stress(Seconds::from_hours(4.0), StressCondition::ACCELERATED);
        let stats = p.stats();
        assert!(stats.sigma_mv < 1e-9, "identical devices: {stats:?}");
    }

    #[test]
    fn empty_population_is_rejected() {
        assert!(matches!(
            DevicePopulation::sample(0, 100, 0.1, 1),
            Err(BtiError::EmptyEnsemble)
        ));
    }

    #[test]
    fn quantiles_are_monotone() {
        let p = stressed_population();
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
            let v = p.quantile_mv(q);
            assert!(v >= prev);
            prev = v;
        }
    }
}
