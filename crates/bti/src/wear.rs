//! The common wearout interface shared by the crate's BTI models.
//!
//! Both the analytic [`crate::device::BtiDevice`] (Table I "Model"
//! column) and the Monte-Carlo [`crate::cet::TrapEnsemble`]
//! ("Measurement" column) are stateful integrators driven by the same
//! stress/recover vocabulary. [`WearModel`] captures that vocabulary so
//! higher layers — measurement rigs, scheduler wear loops, circuit site
//! sweeps — can be written once and run against either model (e.g. to
//! cross-validate a policy's guardband against both columns).

use dh_units::Seconds;

use crate::condition::{RecoveryCondition, StressCondition};

/// A stateful BTI wearout integrator: accumulates |ΔVth| under stress,
/// relaxes it under recovery, and reports the total and permanent shift.
///
/// Implementations must treat non-positive durations as no-ops, mirroring
/// the inherent methods of the two model types.
pub trait WearModel {
    /// Applies `dt` of stress at `cond`.
    fn stress(&mut self, dt: Seconds, cond: StressCondition);

    /// Applies `dt` of recovery at `cond`.
    fn recover(&mut self, dt: Seconds, cond: RecoveryCondition);

    /// Total |ΔVth| shift in millivolts.
    fn delta_vth_mv(&self) -> f64;

    /// The permanent (unrecoverable under the deepest condition) portion
    /// of the shift, in millivolts.
    fn permanent_mv(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::BtiDevice;
    use crate::TrapEnsemble;

    /// A generic aging loop usable with either model — the trait's point.
    fn cycle<W: WearModel>(w: &mut W, cycles: usize) -> f64 {
        for _ in 0..cycles {
            w.stress(Seconds::from_hours(1.0), StressCondition::ACCELERATED);
            w.recover(
                Seconds::from_hours(1.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
        }
        w.delta_vth_mv()
    }

    #[test]
    fn both_models_age_through_the_trait() {
        let mut device = BtiDevice::paper_calibrated();
        let mut ensemble = TrapEnsemble::paper_calibrated(500).unwrap();
        let w_device = cycle(&mut device, 4);
        let w_ensemble = cycle(&mut ensemble, 4);
        assert!(w_device > 0.0);
        assert!(w_ensemble > 0.0);
        assert!(WearModel::permanent_mv(&device) >= 0.0);
        assert!(WearModel::permanent_mv(&ensemble) >= 0.0);
    }
}
