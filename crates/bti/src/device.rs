//! A stateful BTI device that integrates arbitrary stress/recovery
//! schedules.
//!
//! [`BtiDevice`] wraps the analytic model of [`crate::analytic`] in a state
//! machine usable by circuit- and system-level simulations: call
//! [`BtiDevice::stress`] and [`BtiDevice::recover`] with arbitrary interval
//! lengths and conditions and read back the threshold-voltage shift.
//!
//! Internally the device tracks three wearout pools (all in millivolts of
//! |ΔVth|):
//!
//! * **recoverable** — relaxes under any recovery condition at the
//!   universal-relaxation rate scaled by θ(V,T);
//! * **soft permanent** — damage on its way to permanence; annealed only by
//!   deep (condition-4-like) recovery applied in time;
//! * **hard permanent** — consolidated damage, unrecoverable by any
//!   condition.
//!
//! Constant-condition stress uses exact equivalent-age reconstruction, so
//! results are independent of step size; recovery within one condition
//! segment follows the exact universal-relaxation curve.

use dh_units::{Fraction, Seconds};

use crate::analytic::AnalyticBtiModel;
use crate::condition::{RecoveryCondition, StressCondition};
use crate::wear::WearModel;

/// Phase bookkeeping for piecewise-exact integration.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Idle,
    Stressing,
    Recovering {
        condition: RecoveryCondition,
        /// Total wearout at the start of this recovery segment — the
        /// universal-relaxation fraction is calibrated against *total*
        /// wearout, with the permanent pool acting as a floor.
        start_total_mv: f64,
        /// Equivalent stress age at the start of this segment (sets ξ).
        stress_age: Seconds,
        /// Time spent in this recovery segment.
        elapsed: Seconds,
    },
}

/// A stateful BTI-degrading device (e.g. one transistor, one ring
/// oscillator, or one core treated in aggregate).
#[derive(Debug, Clone, PartialEq)]
pub struct BtiDevice {
    model: AnalyticBtiModel,
    recoverable_mv: f64,
    soft_permanent_mv: f64,
    hard_permanent_mv: f64,
    /// Continuous-stress window (time under stress since the last deep
    /// recovery reset) — drives permanent-damage onset.
    window: Seconds,
    phase: Phase,
    total_stress_time: Seconds,
    total_recovery_time: Seconds,
}

impl BtiDevice {
    /// Creates a fresh (never stressed) device using the given model.
    pub fn new(model: AnalyticBtiModel) -> Self {
        Self {
            model,
            recoverable_mv: 0.0,
            soft_permanent_mv: 0.0,
            hard_permanent_mv: 0.0,
            window: Seconds::ZERO,
            phase: Phase::Idle,
            total_stress_time: Seconds::ZERO,
            total_recovery_time: Seconds::ZERO,
        }
    }

    /// Creates a fresh device with the paper-calibrated model.
    pub fn paper_calibrated() -> Self {
        Self::new(AnalyticBtiModel::paper_calibrated())
    }

    /// The model in use.
    pub fn model(&self) -> &AnalyticBtiModel {
        &self.model
    }

    /// Total |ΔVth| shift in millivolts.
    pub fn delta_vth_mv(&self) -> f64 {
        self.recoverable_mv + self.soft_permanent_mv + self.hard_permanent_mv
    }

    /// The permanent portion (soft + hard) of the shift, in millivolts.
    pub fn permanent_mv(&self) -> f64 {
        self.soft_permanent_mv + self.hard_permanent_mv
    }

    /// The consolidated (unrecoverable) portion of the shift, in millivolts.
    pub fn hard_permanent_mv(&self) -> f64 {
        self.hard_permanent_mv
    }

    /// The recoverable portion of the shift, in millivolts.
    pub fn recoverable_mv(&self) -> f64 {
        self.recoverable_mv
    }

    /// Cumulative time spent under stress.
    pub fn total_stress_time(&self) -> Seconds {
        self.total_stress_time
    }

    /// Cumulative time spent in recovery.
    pub fn total_recovery_time(&self) -> Seconds {
        self.total_recovery_time
    }

    /// Applies `dt` of stress at `cond`.
    ///
    /// Constant-condition stress is step-size independent: the device
    /// reconstructs its equivalent stress age and advances along the power
    /// law.
    pub fn stress(&mut self, dt: Seconds, cond: StressCondition) {
        if !(dt.value() > 0.0) || !cond.is_finite() {
            return;
        }
        self.phase = Phase::Stressing;
        let law = self.model.stress_law();

        let total = self.delta_vth_mv();
        let new_total = law.advance_wearout(total, dt, cond);
        self.apply_stress_totals(total, new_total, dt);
    }

    /// [`BtiDevice::stress`] with the pre-fusion age reconstruction (two
    /// amplitude evaluations per step instead of one): kept as the measured
    /// baseline for `perf_snapshot`. Not part of the API.
    #[doc(hidden)]
    pub fn stress_reference(&mut self, dt: Seconds, cond: StressCondition) {
        if !(dt.value() > 0.0) || !cond.is_finite() {
            return;
        }
        self.phase = Phase::Stressing;
        let law = self.model.stress_law();

        let total = self.delta_vth_mv();
        let age = law.equivalent_age(total, cond);
        let new_total = law.wearout_mv(age + dt, cond);
        self.apply_stress_totals(total, new_total, dt);
    }

    /// Distributes a stress step's wearout increment over the three pools.
    fn apply_stress_totals(&mut self, total: f64, new_total: f64, dt: Seconds) {
        let generated = (new_total - total).max(0.0);

        let new_window = self.window + dt;
        // Permanent target tracks the continuous-stress window.
        let p_target = self.model.permanent_fraction(new_window).value() * new_total;
        let p_current = self.permanent_mv();
        let dp = (p_target - p_current).clamp(0.0, generated);
        self.soft_permanent_mv += dp;
        self.recoverable_mv += generated - dp;

        // Soft → hard consolidation.
        let tau_h = self.model.permanent_params().tau_harden;
        let transfer = self.soft_permanent_mv * (1.0 - (-(dt / tau_h)).exp());
        self.soft_permanent_mv -= transfer;
        self.hard_permanent_mv += transfer;

        self.window = new_window;
        self.total_stress_time += dt;
    }

    /// Applies `dt` of recovery at `cond`.
    ///
    /// Within a constant-condition recovery segment the relaxation follows
    /// the exact universal-relaxation curve (step-size independent); a new
    /// segment starts whenever the condition changes or stress intervened.
    pub fn recover(&mut self, dt: Seconds, cond: RecoveryCondition) {
        if !(dt.value() > 0.0) || !cond.is_finite() {
            return;
        }
        // Small measurement-grade fluctuations (e.g. the paper's ±0.3 °C
        // thermal chamber) must not restart the relaxation segment: treat
        // conditions within 2 K and 10 mV as the same segment, keeping the
        // original segment condition for θ.
        let same_segment = |a: RecoveryCondition, b: RecoveryCondition| {
            (a.temperature.value() - b.temperature.value()).abs() < 2.0
                && (a.gate_voltage.value() - b.gate_voltage.value()).abs() < 0.010
        };

        let (cond, start_total_mv, stress_age, elapsed) = match self.phase {
            Phase::Recovering {
                condition,
                start_total_mv,
                stress_age,
                elapsed,
            } if same_segment(condition, cond) => (condition, start_total_mv, stress_age, elapsed),
            _ => {
                // New relaxation segment: ξ is referenced to the equivalent
                // age of the accumulated wearout at the reference stress
                // condition (floored at 1 s so a fresh device is well
                // defined).
                let age = self
                    .model
                    .stress_law()
                    .equivalent_age(
                        self.delta_vth_mv(),
                        crate::condition::StressCondition::ACCELERATED,
                    )
                    .max(Seconds::new(1.0));
                (cond, self.delta_vth_mv(), age, Seconds::ZERO)
            }
        };
        let theta = self.model.theta(cond);

        // Deep-recovery annealing of soft permanent damage and window reset.
        let params = self.model.permanent_params();
        let depth = theta / self.model.theta4();
        let soft_factor = (-depth * dt.value() / params.tau_soft_anneal.value()).exp();
        let window_factor = if params.tau_window_reset == params.tau_soft_anneal {
            soft_factor
        } else {
            (-depth * dt.value() / params.tau_window_reset.value()).exp()
        };
        self.soft_permanent_mv *= soft_factor;
        self.window = self.window * window_factor;

        // Universal relaxation of the total wearout, floored by the
        // (possibly annealed) permanent pool — the same semantics as the
        // one-shot `AnalyticBtiModel::recovery_fraction`.
        let elapsed = elapsed + dt;
        let xi_eff = theta * (elapsed / stress_age);
        let r = self.model.relaxation().recovery_fraction_at(xi_eff).value();
        let permanent_now = self.permanent_mv();
        let remaining = (start_total_mv * (1.0 - r)).max(permanent_now);
        self.recoverable_mv = (remaining - permanent_now).max(0.0);

        self.phase = Phase::Recovering {
            condition: cond,
            start_total_mv,
            stress_age,
            elapsed,
        };
        self.total_recovery_time += dt;
    }

    /// Fraction of the wearout present at the start of the current recovery
    /// segment that has been recovered so far; [`Fraction::ZERO`] outside a
    /// recovery segment.
    pub fn segment_recovery(&self) -> Fraction {
        match self.phase {
            Phase::Recovering { start_total_mv, .. } if start_total_mv > 0.0 => {
                Fraction::clamped(1.0 - self.delta_vth_mv() / start_total_mv)
            }
            _ => Fraction::ZERO,
        }
    }
}

impl WearModel for BtiDevice {
    fn stress(&mut self, dt: Seconds, cond: StressCondition) {
        BtiDevice::stress(self, dt, cond);
    }

    fn recover(&mut self, dt: Seconds, cond: RecoveryCondition) {
        BtiDevice::recover(self, dt, cond);
    }

    fn delta_vth_mv(&self) -> f64 {
        BtiDevice::delta_vth_mv(self)
    }

    fn permanent_mv(&self) -> f64 {
        BtiDevice::permanent_mv(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_table_one(cond: RecoveryCondition) -> f64 {
        let mut d = BtiDevice::paper_calibrated();
        // Stress in many chunks to exercise step independence.
        for _ in 0..24 {
            d.stress(Seconds::from_hours(1.0), StressCondition::ACCELERATED);
        }
        let w0 = d.delta_vth_mv();
        for _ in 0..12 {
            d.recover(Seconds::from_minutes(30.0), cond);
        }
        (w0 - d.delta_vth_mv()) / w0 * 100.0
    }

    #[test]
    fn device_reproduces_table_one_within_tolerance() {
        // The stateful integrator should track the one-shot analytic answer
        // for the Table I protocol.
        let targets = [1.0, 14.4, 29.2, 72.7];
        for (cond, want) in RecoveryCondition::table_one().iter().zip(targets) {
            let got = run_table_one(*cond);
            assert!(
                (got - want).abs() < 3.0,
                "{cond}: device says {got:.2}%, table says {want}%"
            );
        }
    }

    #[test]
    fn stress_is_step_size_independent() {
        let mut coarse = BtiDevice::paper_calibrated();
        coarse.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);

        let mut fine = BtiDevice::paper_calibrated();
        for _ in 0..96 {
            fine.stress(Seconds::from_minutes(15.0), StressCondition::ACCELERATED);
        }
        let rel = (coarse.delta_vth_mv() - fine.delta_vth_mv()).abs() / coarse.delta_vth_mv();
        assert!(
            rel < 0.02,
            "coarse {} vs fine {}",
            coarse.delta_vth_mv(),
            fine.delta_vth_mv()
        );
    }

    #[test]
    fn recovery_is_step_size_independent_within_a_segment() {
        let mk = || {
            let mut d = BtiDevice::paper_calibrated();
            d.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
            d
        };
        let mut coarse = mk();
        coarse.recover(
            Seconds::from_hours(6.0),
            RecoveryCondition::ACTIVE_ACCELERATED,
        );
        let mut fine = mk();
        for _ in 0..360 {
            fine.recover(
                Seconds::from_minutes(1.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
        }
        let rel =
            (coarse.delta_vth_mv() - fine.delta_vth_mv()).abs() / coarse.delta_vth_mv().max(1e-12);
        assert!(
            rel < 1e-6,
            "coarse {} vs fine {}",
            coarse.delta_vth_mv(),
            fine.delta_vth_mv()
        );
    }

    #[test]
    fn fresh_device_has_no_wearout_and_recovery_is_harmless() {
        let mut d = BtiDevice::paper_calibrated();
        assert_eq!(d.delta_vth_mv(), 0.0);
        d.recover(
            Seconds::from_hours(1.0),
            RecoveryCondition::ACTIVE_ACCELERATED,
        );
        assert_eq!(d.delta_vth_mv(), 0.0);
        assert_eq!(d.permanent_mv(), 0.0);
    }

    #[test]
    fn zero_length_intervals_are_no_ops() {
        let mut d = BtiDevice::paper_calibrated();
        d.stress(Seconds::from_hours(1.0), StressCondition::ACCELERATED);
        let w = d.delta_vth_mv();
        d.stress(Seconds::ZERO, StressCondition::ACCELERATED);
        d.recover(Seconds::ZERO, RecoveryCondition::PASSIVE);
        assert_eq!(d.delta_vth_mv(), w);
    }

    #[test]
    fn wearout_grows_sublinearly_with_stress_time() {
        let mut d = BtiDevice::paper_calibrated();
        d.stress(Seconds::from_hours(1.0), StressCondition::ACCELERATED);
        let w1 = d.delta_vth_mv();
        d.stress(Seconds::from_hours(23.0), StressCondition::ACCELERATED);
        let w24 = d.delta_vth_mv();
        // Power law with n = 1/6: w(24h)/w(1h) = 24^(1/6) ≈ 1.70.
        let ratio = w24 / w1;
        assert!(
            (ratio - 24f64.powf(1.0 / 6.0)).abs() < 0.05,
            "ratio = {ratio}"
        );
    }

    #[test]
    fn permanent_damage_accumulates_only_under_long_windows() {
        let model = AnalyticBtiModel::paper_calibrated();
        // Long continuous stress: substantial permanent component.
        let mut cont = BtiDevice::new(model);
        cont.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        let p_cont = cont.permanent_mv() / cont.delta_vth_mv();
        assert!(p_cont > 0.25, "continuous permanent fraction {p_cont}");

        // Same total stress in 1 h slices with deep recovery between:
        // negligible permanent damage (the Fig. 4 claim).
        let mut cycled = BtiDevice::new(model);
        for _ in 0..24 {
            cycled.stress(Seconds::from_hours(1.0), StressCondition::ACCELERATED);
            cycled.recover(
                Seconds::from_hours(1.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
        }
        let p_cycled = cycled.permanent_mv();
        assert!(
            p_cycled < 0.15 * cont.permanent_mv(),
            "cycled permanent {p_cycled} vs continuous {}",
            cont.permanent_mv()
        );
    }

    #[test]
    fn passive_recovery_does_not_anneal_permanent_damage() {
        let mut d = BtiDevice::paper_calibrated();
        d.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        let p0 = d.permanent_mv();
        d.recover(Seconds::from_hours(24.0), RecoveryCondition::PASSIVE);
        assert!((d.permanent_mv() - p0).abs() / p0 < 1e-6);
    }

    #[test]
    fn segment_recovery_reports_progress() {
        let mut d = BtiDevice::paper_calibrated();
        assert_eq!(d.segment_recovery(), Fraction::ZERO);
        d.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        d.recover(
            Seconds::from_hours(6.0),
            RecoveryCondition::ACTIVE_ACCELERATED,
        );
        let r = d.segment_recovery().as_percent();
        assert!(r > 60.0 && r < 90.0, "segment recovery {r}%");
    }

    #[test]
    fn bookkeeping_tracks_cumulative_times() {
        let mut d = BtiDevice::paper_calibrated();
        d.stress(Seconds::from_hours(2.0), StressCondition::ACCELERATED);
        d.recover(Seconds::from_hours(1.0), RecoveryCondition::PASSIVE);
        d.stress(Seconds::from_hours(3.0), StressCondition::ACCELERATED);
        assert_eq!(d.total_stress_time(), Seconds::from_hours(5.0));
        assert_eq!(d.total_recovery_time(), Seconds::from_hours(1.0));
    }

    #[test]
    fn non_finite_inputs_are_rejected_at_the_kernel_boundary() {
        use dh_units::{Kelvin, Volts};
        let mut d = BtiDevice::paper_calibrated();
        d.stress(Seconds::from_hours(2.0), StressCondition::ACCELERATED);
        let before = d.delta_vth_mv();
        assert!(before.is_finite() && before > 0.0);

        d.stress(Seconds::new(f64::NAN), StressCondition::ACCELERATED);
        d.stress(
            Seconds::from_hours(1.0),
            StressCondition {
                gate_voltage: Volts::new(f64::NAN),
                temperature: StressCondition::ACCELERATED.temperature,
            },
        );
        d.recover(
            Seconds::from_hours(1.0),
            RecoveryCondition {
                gate_voltage: Volts::ZERO,
                temperature: Kelvin::new(f64::INFINITY),
            },
        );
        assert_eq!(
            d.delta_vth_mv(),
            before,
            "poisoned inputs must be no-ops, not NaN propagation"
        );
        assert_eq!(d.total_stress_time(), Seconds::from_hours(2.0));
    }
}
