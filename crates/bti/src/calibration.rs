//! Closed-form calibration of the analytic model from the paper's Table I.
//!
//! Table I reports, for a 6-hour recovery following a 24-hour accelerated
//! stress, the recovery percentage under each of the four conditions of
//! Fig. 2(a):
//!
//! | # | condition | measurement | model |
//! |---|-----------|-------------|-------|
//! | 1 | 20 °C, 0 V | 0.66 % | 1 % |
//! | 2 | 20 °C, −0.3 V | 16.7 % | 14.4 % |
//! | 3 | 110 °C, 0 V | 28.7 % | 29.2 % |
//! | 4 | 110 °C, −0.3 V | 72.4 % | 72.7 % |
//!
//! With the relaxation exponent β fixed, the universal-relaxation form
//! `r(ξ_eff) = 1 / (1 + B · ξ_eff^−β)` with `ξ_eff = θ(V,T) · t_rec/t_stress`
//! has exactly four remaining degrees of freedom — `B`, the voltage gain γ,
//! the effective activation energy `Ea_r`, and the interaction term η — and
//! the four Table I points determine them uniquely:
//!
//! 1. condition 1 (θ = 1) fixes `B`;
//! 2. condition 2 fixes γ (via the θ_V needed to reach 14.4 %);
//! 3. condition 3 fixes `Ea_r` (via the θ_T needed to reach 29.2 %);
//! 4. condition 4 fixes η (the gap between θ_T·θ_V and the θ actually
//!    needed for 72.7 %).

use dh_units::constants::BOLTZMANN_EV_PER_K;
use dh_units::{Celsius, Fraction, Kelvin, Seconds, Volts};

use crate::acceleration::RecoveryAcceleration;
use crate::error::BtiError;

/// The four recovery-fraction targets of Table I, in condition order 1–4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableOneTargets {
    /// Recovery fractions for conditions 1–4.
    pub fractions: [Fraction; 4],
    /// Stress duration preceding recovery (24 h in the paper).
    pub stress_time: Seconds,
    /// Recovery duration (6 h in the paper).
    pub recovery_time: Seconds,
    /// Room (reference) temperature: 20 °C.
    pub room: Kelvin,
    /// Elevated temperature: 110 °C.
    pub hot: Kelvin,
    /// Active-recovery reverse bias magnitude: 0.3 V.
    pub reverse_bias: Volts,
}

impl TableOneTargets {
    /// The paper's **model** column (1 %, 14.4 %, 29.2 %, 72.7 %) — used to
    /// calibrate the analytic model.
    pub fn model_column() -> Self {
        Self::with_fractions([0.01, 0.144, 0.292, 0.727])
    }

    /// The paper's **measurement** column (0.66 %, 16.7 %, 28.7 %, 72.4 %) —
    /// used to calibrate the CET trap ensemble.
    pub fn measurement_column() -> Self {
        Self::with_fractions([0.0066, 0.167, 0.287, 0.724])
    }

    fn with_fractions(f: [f64; 4]) -> Self {
        Self {
            fractions: f.map(Fraction::clamped),
            stress_time: Seconds::from_hours(24.0),
            recovery_time: Seconds::from_hours(6.0),
            room: Celsius::new(20.0).to_kelvin(),
            hot: Celsius::new(110.0).to_kelvin(),
            reverse_bias: Volts::new(0.3),
        }
    }

    /// The relaxation time ratio ξ = t_rec / t_stress (0.25 in the paper).
    pub fn xi(&self) -> f64 {
        self.recovery_time / self.stress_time
    }

    /// The exact bit patterns of every target parameter, in field order —
    /// the hashable identity of a target set, used to key calibration
    /// caches (two sets are the same calibration iff every f64 is the
    /// same bits).
    pub fn bit_key(&self) -> [u64; 9] {
        let f = &self.fractions;
        [
            f[0].value().to_bits(),
            f[1].value().to_bits(),
            f[2].value().to_bits(),
            f[3].value().to_bits(),
            self.stress_time.value().to_bits(),
            self.recovery_time.value().to_bits(),
            self.room.value().to_bits(),
            self.hot.value().to_bits(),
            self.reverse_bias.value().to_bits(),
        ]
    }
}

/// Calibrated parameters of the universal-relaxation analytic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniversalRelaxation {
    /// Relaxation amplitude constant `B`.
    pub b: f64,
    /// Relaxation exponent β (fixed, not fitted; ~0.18 in the literature).
    pub beta: f64,
    /// Acceleration factor parameters (γ, Ea_r, η).
    pub acceleration: RecoveryAcceleration,
}

impl UniversalRelaxation {
    /// The universal-relaxation recovery fraction for an effective
    /// (acceleration-scaled) time ratio `xi_eff = θ · t_rec / t_stress`.
    ///
    /// Monotone from 0 (no recovery) to 1 (complete) in `xi_eff`.
    pub fn recovery_fraction_at(&self, xi_eff: f64) -> Fraction {
        if xi_eff <= 0.0 {
            return Fraction::ZERO;
        }
        Fraction::clamped(1.0 / (1.0 + self.b * xi_eff.powf(-self.beta)))
    }

    /// Inverse of [`Self::recovery_fraction_at`]: the `xi_eff` needed to
    /// reach a target recovery fraction. Returns `None` for targets of 0 or
    /// 1 (reached only asymptotically).
    pub fn xi_eff_for(&self, target: Fraction) -> Option<f64> {
        let r = target.value();
        if r <= 0.0 || r >= 1.0 {
            return None;
        }
        // r = 1/(1 + B x^-β)  ⇒  x = (B / (1/r − 1))^(1/β)
        Some((self.b / (1.0 / r - 1.0)).powf(1.0 / self.beta))
    }
}

/// Default relaxation exponent β. Universal-relaxation fits of NBTI data
/// across technologies cluster around 0.15–0.2; β itself is degenerate with
/// `B` for single-(t_s, t_r) calibration, so we fix it.
pub const DEFAULT_BETA: f64 = 0.18;

/// Solves the analytic-model calibration in closed form from Table I.
///
/// # Errors
///
/// Returns [`BtiError::UnsolvableCalibration`] if the targets are not
/// strictly increasing in condition order, are outside (0, 1), or the
/// temperatures/bias degenerate.
pub fn solve(targets: &TableOneTargets, beta: f64) -> Result<UniversalRelaxation, BtiError> {
    let [r1, r2, r3, r4] = targets.fractions.map(Fraction::value);
    if !(0.0 < r1 && r1 < r2 && r2 < r4 && r1 < r3 && r3 < r4 && r4 < 1.0) {
        return Err(BtiError::UnsolvableCalibration(format!(
            "targets must satisfy 0 < r1 < r2,r3 < r4 < 1, got {r1}, {r2}, {r3}, {r4}"
        )));
    }
    if !(beta > 0.0) || !beta.is_finite() {
        return Err(BtiError::UnsolvableCalibration(format!(
            "beta must be positive, got {beta}"
        )));
    }
    if targets.hot <= targets.room {
        return Err(BtiError::UnsolvableCalibration(
            "elevated temperature must exceed room temperature".into(),
        ));
    }
    if targets.reverse_bias <= Volts::ZERO {
        return Err(BtiError::UnsolvableCalibration(
            "reverse bias must be strictly positive".into(),
        ));
    }

    let xi = targets.xi();

    // Step 1: condition 1 (θ = 1) fixes B.
    let b = (1.0 / r1 - 1.0) * xi.powf(beta);

    let xi_eff_for = |r: f64| (b / (1.0 / r - 1.0)).powf(1.0 / beta);

    // Step 2: condition 2 fixes the voltage gain γ.
    let theta_v = xi_eff_for(r2) / xi;
    let gamma = theta_v.ln() / targets.reverse_bias.value();

    // Step 3: condition 3 fixes the effective activation energy.
    let theta_t = xi_eff_for(r3) / xi;
    let inv_dt = 1.0 / targets.room.value() - 1.0 / targets.hot.value();
    let ea = theta_t.ln() * BOLTZMANN_EV_PER_K / inv_dt;

    // Step 4: condition 4 fixes the interaction term η.
    let theta4_needed = xi_eff_for(r4) / xi;
    let eta = (theta_t * theta_v / theta4_needed).ln();

    Ok(UniversalRelaxation {
        b,
        beta,
        acceleration: RecoveryAcceleration {
            ea_ev: ea,
            gamma_per_volt: gamma,
            eta,
            reference_temperature: targets.room,
            anchor_temperature: targets.hot,
            anchor_reverse_bias: targets.reverse_bias,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::RecoveryCondition;

    #[test]
    fn solve_reproduces_all_four_targets_exactly() {
        let targets = TableOneTargets::model_column();
        let model = solve(&targets, DEFAULT_BETA).unwrap();
        let xi = targets.xi();
        for (cond, target) in RecoveryCondition::table_one().iter().zip(targets.fractions) {
            let theta = model.acceleration.factor(*cond);
            let r = model.recovery_fraction_at(theta * xi);
            assert!(
                (r.value() - target.value()).abs() < 1e-9,
                "{cond}: got {} want {}",
                r.value(),
                target.value()
            );
        }
    }

    #[test]
    fn calibrated_constants_are_in_expected_ranges() {
        let model = solve(&TableOneTargets::model_column(), DEFAULT_BETA).unwrap();
        // Values pre-computed by hand from the closed-form solution; these
        // pin the calibration against accidental formula changes.
        assert!((model.b - 77.1).abs() < 1.0, "B = {}", model.b);
        assert!(
            model.acceleration.ea_ev > 2.0 && model.acceleration.ea_ev < 2.5,
            "Ea = {}",
            model.acceleration.ea_ev
        );
        assert!(
            model.acceleration.gamma_per_volt > 45.0 && model.acceleration.gamma_per_volt < 60.0,
            "gamma = {}",
            model.acceleration.gamma_per_volt
        );
        // Sub-multiplicative interaction.
        assert!(
            model.acceleration.eta > 0.0,
            "eta = {}",
            model.acceleration.eta
        );
    }

    #[test]
    fn non_monotone_targets_are_rejected() {
        let mut t = TableOneTargets::model_column();
        t.fractions = [0.2, 0.1, 0.3, 0.7].map(Fraction::clamped);
        assert!(matches!(
            solve(&t, DEFAULT_BETA),
            Err(BtiError::UnsolvableCalibration(_))
        ));
    }

    #[test]
    fn degenerate_temperatures_are_rejected() {
        let mut t = TableOneTargets::model_column();
        t.hot = t.room;
        assert!(solve(&t, DEFAULT_BETA).is_err());
    }

    #[test]
    fn bad_beta_is_rejected() {
        let t = TableOneTargets::model_column();
        assert!(solve(&t, 0.0).is_err());
        assert!(solve(&t, f64::NAN).is_err());
    }

    #[test]
    fn xi_eff_inverse_round_trips() {
        let model = solve(&TableOneTargets::model_column(), DEFAULT_BETA).unwrap();
        for r in [0.01, 0.1, 0.5, 0.9, 0.99] {
            let xe = model.xi_eff_for(Fraction::clamped(r)).unwrap();
            let back = model.recovery_fraction_at(xe);
            assert!((back.value() - r).abs() < 1e-9);
        }
        assert!(model.xi_eff_for(Fraction::ZERO).is_none());
        assert!(model.xi_eff_for(Fraction::ONE).is_none());
    }

    #[test]
    fn recovery_fraction_is_monotone_in_xi_eff() {
        let model = solve(&TableOneTargets::model_column(), DEFAULT_BETA).unwrap();
        let mut prev = -1.0;
        for exp in -6..20 {
            let r = model.recovery_fraction_at(10f64.powi(exp)).value();
            assert!(r >= prev);
            prev = r;
        }
        assert_eq!(model.recovery_fraction_at(0.0), Fraction::ZERO);
        assert_eq!(model.recovery_fraction_at(-1.0), Fraction::ZERO);
    }

    #[test]
    fn measurement_column_also_solves() {
        // The measurement column is used by the CET ensemble, but the
        // closed-form solver should handle it too.
        let model = solve(&TableOneTargets::measurement_column(), DEFAULT_BETA).unwrap();
        assert!(model.b > 0.0);
    }
}
