//! Error types for the BTI models.

use core::fmt;

use dh_units::QuantityError;

/// Error returned by BTI model construction and calibration.
#[derive(Debug, Clone, PartialEq)]
pub enum BtiError {
    /// A quantity failed validation.
    Quantity(QuantityError),
    /// Calibration targets are not solvable (e.g. not strictly increasing).
    UnsolvableCalibration(String),
    /// Ensemble calibration did not converge within the iteration budget.
    CalibrationDiverged {
        /// Worst absolute error (in recovery-fraction units) at exit.
        worst_error: f64,
        /// Tolerance that was requested.
        tolerance: f64,
    },
    /// An ensemble was configured with zero traps.
    EmptyEnsemble,
}

impl fmt::Display for BtiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Quantity(e) => write!(f, "invalid quantity: {e}"),
            Self::UnsolvableCalibration(why) => write!(f, "unsolvable calibration: {why}"),
            Self::CalibrationDiverged { worst_error, tolerance } => write!(
                f,
                "ensemble calibration did not converge: worst error {worst_error:.4} > tolerance {tolerance:.4}"
            ),
            Self::EmptyEnsemble => write!(f, "trap ensemble must contain at least one trap"),
        }
    }
}

impl std::error::Error for BtiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Quantity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QuantityError> for BtiError {
    fn from(e: QuantityError) -> Self {
        Self::Quantity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages() {
        let e = BtiError::CalibrationDiverged {
            worst_error: 0.05,
            tolerance: 0.01,
        };
        assert!(e.to_string().contains("did not converge"));
        assert!(BtiError::EmptyEnsemble.to_string().contains("at least one"));
    }

    #[test]
    fn quantity_error_converts_and_sources() {
        use std::error::Error;
        let e: BtiError = QuantityError::FractionOutOfRange(2.0).into();
        assert!(e.source().is_some());
    }
}
