//! Bias Temperature Instability (BTI) wearout and **active recovery** models.
//!
//! This crate reproduces the BTI half of Guo & Stan, *"Deep Healing: Ease the
//! BTI and EM Wearout Crisis by Activating Recovery"* (2017). The paper
//! demonstrates, on 40 nm FPGA ring oscillators, that BTI recovery can be
//!
//! * **activated** by applying a negative gate–source voltage during idle
//!   periods (reversing the stress direction), and
//! * **accelerated** by elevated temperature,
//!
//! and that **in-time scheduled recovery eliminates the permanent wearout
//! component** that otherwise accumulates (the paper's Fig. 4).
//!
//! Two cross-validated models are provided, mirroring the paper's Table I
//! "Measurement" and "Model" columns:
//!
//! * [`analytic::AnalyticBtiModel`] — a universal-relaxation (Kaczer-style)
//!   analytic model whose four calibration constants are solved in closed
//!   form from Table I ([`calibration::TableOneTargets`]).
//! * [`cet::TrapEnsemble`] — a capture–emission-time (CET) map Monte-Carlo
//!   trap ensemble; the emission-time distribution is fitted so that the
//!   ensemble reproduces the measured recovery percentages, and the
//!   heavy-tailed emission times *are* the permanent component.
//!
//! On top of the models, [`device::BtiDevice`] is a stateful
//! wearout/recovery integrator usable by circuit- and system-level
//! simulations, and [`schedule`] runs stress-vs-recovery cycling experiments
//! (the paper's Fig. 4).
//!
//! # Quick start
//!
//! ```
//! use dh_bti::analytic::AnalyticBtiModel;
//! use dh_bti::condition::RecoveryCondition;
//! use dh_units::Seconds;
//!
//! let model = AnalyticBtiModel::paper_calibrated();
//! // Table I, condition 4: 110 °C and −0.3 V for 6 h after 24 h stress.
//! let r = model.recovery_fraction(
//!     Seconds::from_hours(24.0),
//!     Seconds::from_hours(6.0),
//!     RecoveryCondition::ACTIVE_ACCELERATED,
//! );
//! assert!((r.as_percent() - 72.7).abs() < 1.0);
//! ```

#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > 0.0)` deliberately catches NaN
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ac;
pub mod acceleration;
pub mod analytic;
pub mod calibration;
pub mod cet;
pub mod condition;
pub mod device;
pub mod error;
pub mod schedule;
pub mod variability;
pub mod wear;

pub use analytic::AnalyticBtiModel;
pub use cet::TrapEnsemble;
pub use condition::{RecoveryCondition, StressCondition};
pub use device::BtiDevice;
pub use error::BtiError;
pub use wear::WearModel;
