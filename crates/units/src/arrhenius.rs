//! Arrhenius temperature-acceleration helpers.
//!
//! Both wearout mechanisms in the paper accelerate with temperature through
//! thermally activated processes: trap emission for BTI, atomic diffusion for
//! EM. Everything reduces to the Arrhenius form
//! `rate(T) ∝ exp(−Ea / (k_B · T))`, and most of what the models need is the
//! *ratio* of rates between two temperatures.

use crate::constants::BOLTZMANN_EV_PER_K;
use crate::quantity::Kelvin;

/// The Arrhenius rate factor `exp(−Ea / (k_B·T))` for an activation energy
/// `ea_ev` (in eV) at absolute temperature `t`.
///
/// This is a *relative* rate: multiply by a prefactor to obtain a physical
/// rate.
///
/// # Panics
///
/// Panics in debug builds if `t` is not a positive, finite temperature.
#[inline]
pub fn rate_factor(ea_ev: f64, t: Kelvin) -> f64 {
    debug_assert!(t.value() > 0.0 && t.value().is_finite());
    (-ea_ev / (BOLTZMANN_EV_PER_K * t.value())).exp()
}

/// The acceleration factor of a process with activation energy `ea_ev` (eV)
/// when moving from `reference` to `elevated` temperature:
///
/// `AF = exp( (Ea/k_B) · (1/T_ref − 1/T_elev) )`
///
/// `AF > 1` when `elevated > reference`; the function is exact for
/// `elevated < reference` too (then `AF < 1`), which the lifetime simulator
/// uses to de-rate accelerated test results to use conditions.
#[inline]
pub fn acceleration_factor(ea_ev: f64, reference: Kelvin, elevated: Kelvin) -> f64 {
    debug_assert!(reference.value() > 0.0 && elevated.value() > 0.0);
    ((ea_ev / BOLTZMANN_EV_PER_K) * (1.0 / reference.value() - 1.0 / elevated.value())).exp()
}

/// Solves for the activation energy (eV) that yields a given acceleration
/// factor between two temperatures. Used by model calibration: given a target
/// rate ratio extracted from measurements, back out the effective Ea.
///
/// Returns `None` if the two temperatures coincide (the problem is then
/// degenerate) or `factor` is not positive.
pub fn activation_energy_for(factor: f64, reference: Kelvin, elevated: Kelvin) -> Option<f64> {
    let dt = 1.0 / reference.value() - 1.0 / elevated.value();
    if dt == 0.0 || !(factor > 0.0) || !factor.is_finite() {
        return None;
    }
    Some(factor.ln() * BOLTZMANN_EV_PER_K / dt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantity::Celsius;

    fn k(c: f64) -> Kelvin {
        Celsius::new(c).to_kelvin()
    }

    #[test]
    fn acceleration_is_one_at_equal_temperatures() {
        let t = k(20.0);
        assert!((acceleration_factor(0.9, t, t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acceleration_increases_with_temperature_and_ea() {
        let a1 = acceleration_factor(0.5, k(20.0), k(110.0));
        let a2 = acceleration_factor(1.0, k(20.0), k(110.0));
        let a3 = acceleration_factor(1.0, k(20.0), k(230.0));
        assert!(a1 > 1.0);
        assert!(a2 > a1);
        assert!(a3 > a2);
    }

    #[test]
    fn acceleration_below_reference_is_deceleration() {
        let a = acceleration_factor(0.9, k(110.0), k(20.0));
        assert!(a < 1.0);
        // Inverse symmetry.
        let fwd = acceleration_factor(0.9, k(20.0), k(110.0));
        assert!((a * fwd - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rate_factor_ratio_matches_acceleration_factor() {
        let ea = 0.86;
        let ratio = rate_factor(ea, k(230.0)) / rate_factor(ea, k(20.0));
        let af = acceleration_factor(ea, k(20.0), k(230.0));
        assert!((ratio / af - 1.0).abs() < 1e-9);
    }

    #[test]
    fn activation_energy_round_trips() {
        let ea = 1.234;
        let af = acceleration_factor(ea, k(20.0), k(110.0));
        let back = activation_energy_for(af, k(20.0), k(110.0)).unwrap();
        assert!((back - ea).abs() < 1e-9);
    }

    #[test]
    fn activation_energy_degenerate_cases() {
        assert!(activation_energy_for(10.0, k(20.0), k(20.0)).is_none());
        assert!(activation_energy_for(-1.0, k(20.0), k(110.0)).is_none());
        assert!(activation_energy_for(f64::NAN, k(20.0), k(110.0)).is_none());
    }
}
