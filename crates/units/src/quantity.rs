//! Newtypes for the physical quantities used by the wearout models.
//!
//! Every quantity wraps an `f64` and is `Copy`; arithmetic that preserves the
//! unit (addition, subtraction, scaling by a dimensionless factor) is
//! provided via operator impls, while unit-changing operations are explicit
//! named methods so that dimensional errors cannot type-check.

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::constants::ABSOLUTE_ZERO_CELSIUS;
use crate::error::QuantityError;

macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Default)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value in this unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the underlying value in the base unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of two values.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two values.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl PartialOrd for $name {
            #[inline]
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                self.0.partial_cmp(&other.0)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(v: $name) -> f64 {
                v.0
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    ///
    /// Negative values are meaningful: the paper's BTI *active recovery*
    /// applies a negative gate-source voltage (e.g. −0.3 V).
    Volts,
    "V"
);

quantity!(
    /// Absolute temperature in kelvin.
    Kelvin,
    "K"
);

quantity!(
    /// Temperature in degrees Celsius (the unit the paper reports).
    Celsius,
    "°C"
);

quantity!(
    /// Time duration in seconds.
    Seconds,
    "s"
);

quantity!(
    /// Electrical resistance in ohms.
    Ohms,
    "Ω"
);

quantity!(
    /// Electric current in amperes. Sign encodes direction: negative current
    /// is the paper's *EM active recovery* (reverse) direction.
    Amperes,
    "A"
);

quantity!(
    /// Current density in amperes per square metre. Sign encodes direction.
    CurrentDensity,
    "A/m²"
);

quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);

quantity!(
    /// Mechanical (hydrostatic) stress in pascals, used by the EM model.
    Pascals,
    "Pa"
);

impl Kelvin {
    /// Converts to degrees Celsius.
    #[inline]
    pub fn to_celsius(self) -> Celsius {
        Celsius::new(self.value() + ABSOLUTE_ZERO_CELSIUS)
    }

    /// Validates that the temperature is physical (strictly above 0 K and
    /// finite).
    ///
    /// # Errors
    ///
    /// Returns [`QuantityError::NonPhysicalTemperature`] for values at or
    /// below absolute zero, NaN, or infinity.
    pub fn validated(self) -> Result<Self, QuantityError> {
        if self.value().is_finite() && self.value() > 0.0 {
            Ok(self)
        } else {
            Err(QuantityError::NonPhysicalTemperature(self.value()))
        }
    }
}

impl Celsius {
    /// Converts to kelvin.
    #[inline]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin::new(self.value() - ABSOLUTE_ZERO_CELSIUS)
    }
}

impl From<Celsius> for Kelvin {
    #[inline]
    fn from(c: Celsius) -> Kelvin {
        c.to_kelvin()
    }
}

impl From<Kelvin> for Celsius {
    #[inline]
    fn from(k: Kelvin) -> Celsius {
        k.to_celsius()
    }
}

impl Seconds {
    /// Creates a duration from minutes.
    #[inline]
    pub fn from_minutes(minutes: f64) -> Self {
        Self::new(minutes * 60.0)
    }

    /// Creates a duration from hours.
    #[inline]
    pub fn from_hours(hours: f64) -> Self {
        Self::new(hours * 3600.0)
    }

    /// Creates a duration from days.
    #[inline]
    pub fn from_days(days: f64) -> Self {
        Self::new(days * 86_400.0)
    }

    /// Creates a duration from (365-day) years.
    #[inline]
    pub fn from_years(years: f64) -> Self {
        Self::new(years * 365.0 * 86_400.0)
    }

    /// The duration expressed in minutes.
    #[inline]
    pub fn as_minutes(self) -> f64 {
        self.value() / 60.0
    }

    /// The duration expressed in hours.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.value() / 3600.0
    }

    /// The duration expressed in days.
    #[inline]
    pub fn as_days(self) -> f64 {
        self.value() / 86_400.0
    }

    /// The duration expressed in (365-day) years.
    #[inline]
    pub fn as_years(self) -> f64 {
        self.value() / (365.0 * 86_400.0)
    }

    /// Validates that the duration is non-negative and finite.
    ///
    /// # Errors
    ///
    /// Returns [`QuantityError::NegativeDuration`] for negative, NaN, or
    /// infinite values.
    pub fn validated(self) -> Result<Self, QuantityError> {
        if self.value().is_finite() && self.value() >= 0.0 {
            Ok(self)
        } else {
            Err(QuantityError::NegativeDuration(self.value()))
        }
    }
}

impl CurrentDensity {
    /// Creates a current density from MA/cm² (the unit used in the paper,
    /// e.g. `±7.96 MA/cm²` for the accelerated EM stress).
    #[inline]
    pub fn from_ma_per_cm2(ma_per_cm2: f64) -> Self {
        // 1 MA/cm² = 1e6 A / 1e-4 m² = 1e10 A/m²
        Self::new(ma_per_cm2 * 1.0e10)
    }

    /// The current density expressed in MA/cm².
    #[inline]
    pub fn as_ma_per_cm2(self) -> f64 {
        self.value() / 1.0e10
    }
}

impl Hertz {
    /// Creates a frequency from megahertz.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Self::new(mhz * 1.0e6)
    }

    /// The frequency expressed in megahertz.
    #[inline]
    pub fn as_mhz(self) -> f64 {
        self.value() / 1.0e6
    }

    /// The corresponding period. Returns `None` for zero or negative
    /// frequencies.
    #[inline]
    pub fn period(self) -> Option<Seconds> {
        (self.value() > 0.0).then(|| Seconds::new(1.0 / self.value()))
    }
}

impl Pascals {
    /// Creates a stress value from megapascals.
    #[inline]
    pub fn from_mpa(mpa: f64) -> Self {
        Self::new(mpa * 1.0e6)
    }

    /// The stress expressed in megapascals.
    #[inline]
    pub fn as_mpa(self) -> f64 {
        self.value() / 1.0e6
    }
}

/// Ohm's law: voltage across a resistance carrying a current.
impl Mul<Ohms> for Amperes {
    type Output = Volts;
    #[inline]
    fn mul(self, rhs: Ohms) -> Volts {
        Volts::new(self.value() * rhs.value())
    }
}

/// Ohm's law: current through a resistance from a voltage.
impl Div<Ohms> for Volts {
    type Output = Amperes;
    #[inline]
    fn div(self, rhs: Ohms) -> Amperes {
        Amperes::new(self.value() / rhs.value())
    }
}

/// A dimensionless fraction guaranteed to lie in `[0, 1]`.
///
/// Used for recovery percentages, trap occupancies, duty cycles and wearout
/// fractions. Construction clamps or validates, so downstream arithmetic can
/// rely on the invariant.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Fraction(f64);

impl Fraction {
    /// The fraction 0.
    pub const ZERO: Self = Self(0.0);
    /// The fraction 1.
    pub const ONE: Self = Self(1.0);

    /// Creates a fraction, validating the range.
    ///
    /// # Errors
    ///
    /// Returns [`QuantityError::FractionOutOfRange`] if `value` is NaN or
    /// outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, QuantityError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Self(value))
        } else {
            Err(QuantityError::FractionOutOfRange(value))
        }
    }

    /// Creates a fraction, clamping finite values into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn clamped(value: f64) -> Self {
        assert!(!value.is_nan(), "fraction must not be NaN");
        Self(value.clamp(0.0, 1.0))
    }

    /// Returns the underlying value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The complement `1 − f`.
    #[inline]
    pub fn complement(self) -> Self {
        Self(1.0 - self.0)
    }

    /// Expresses the fraction as a percentage in `[0, 100]`.
    #[inline]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Creates a fraction from a percentage in `[0, 100]`.
    ///
    /// # Errors
    ///
    /// Returns [`QuantityError::FractionOutOfRange`] if `percent / 100` is
    /// NaN or outside `[0, 1]`.
    pub fn from_percent(percent: f64) -> Result<Self, QuantityError> {
        Self::new(percent / 100.0)
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*}%", precision, self.as_percent())
        } else {
            write!(f, "{}%", self.as_percent())
        }
    }
}

impl From<Fraction> for f64 {
    #[inline]
    fn from(f: Fraction) -> f64 {
        f.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let t = Celsius::new(110.0);
        let back = t.to_kelvin().to_celsius();
        assert!((back.value() - 110.0).abs() < 1e-12);
        assert!((Celsius::new(20.0).to_kelvin().value() - 293.15).abs() < 1e-12);
    }

    #[test]
    fn seconds_constructors_agree() {
        assert_eq!(Seconds::from_hours(24.0).value(), 86_400.0);
        assert_eq!(Seconds::from_days(1.0), Seconds::from_hours(24.0));
        assert_eq!(Seconds::from_minutes(60.0), Seconds::from_hours(1.0));
        assert!((Seconds::from_years(1.0).as_days() - 365.0).abs() < 1e-9);
    }

    #[test]
    fn current_density_paper_unit_round_trip() {
        let j = CurrentDensity::from_ma_per_cm2(7.96);
        assert!((j.value() - 7.96e10).abs() < 1.0);
        assert!((j.as_ma_per_cm2() - 7.96).abs() < 1e-12);
    }

    #[test]
    fn ohms_law_impls() {
        let v = Amperes::new(2.0) * Ohms::new(3.0);
        assert_eq!(v, Volts::new(6.0));
        let i = Volts::new(6.0) / Ohms::new(3.0);
        assert_eq!(i, Amperes::new(2.0));
    }

    #[test]
    fn like_quantity_division_is_dimensionless() {
        let ratio = Seconds::from_hours(6.0) / Seconds::from_hours(24.0);
        assert!((ratio - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fraction_validates_and_clamps() {
        assert!(Fraction::new(0.5).is_ok());
        assert!(Fraction::new(-0.1).is_err());
        assert!(Fraction::new(1.1).is_err());
        assert!(Fraction::new(f64::NAN).is_err());
        assert_eq!(Fraction::clamped(2.0), Fraction::ONE);
        assert_eq!(Fraction::clamped(-2.0), Fraction::ZERO);
        assert!((Fraction::clamped(0.724).as_percent() - 72.4).abs() < 1e-9);
    }

    #[test]
    fn fraction_complement() {
        let f = Fraction::new(0.25).unwrap();
        assert!((f.complement().value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn negative_voltage_is_representable() {
        // The paper's BTI active recovery condition.
        let v = Volts::new(-0.3);
        assert!(v < Volts::ZERO);
        assert_eq!(-v, Volts::new(0.3));
        assert_eq!(v.abs(), Volts::new(0.3));
    }

    #[test]
    fn display_includes_units() {
        assert_eq!(format!("{:.2}", Volts::new(-0.3)), "-0.30 V");
        assert_eq!(format!("{:.1}", Celsius::new(110.0)), "110.0 °C");
        assert_eq!(format!("{:.1}", Fraction::clamped(0.724)), "72.4%");
    }

    #[test]
    fn kelvin_validation_rejects_non_physical() {
        assert!(Kelvin::new(293.15).validated().is_ok());
        assert!(Kelvin::new(0.0).validated().is_err());
        assert!(Kelvin::new(-1.0).validated().is_err());
        assert!(Kelvin::new(f64::NAN).validated().is_err());
    }

    #[test]
    fn seconds_validation_rejects_negative() {
        assert!(Seconds::new(0.0).validated().is_ok());
        assert!(Seconds::new(-1.0).validated().is_err());
        assert!(Seconds::new(f64::INFINITY).validated().is_err());
    }

    #[test]
    fn sum_of_quantities() {
        let total: Seconds = [1.0, 2.0, 3.0].iter().map(|&s| Seconds::new(s)).sum();
        assert_eq!(total, Seconds::new(6.0));
    }
}
