//! Time-series collection used by the experiment harness.
//!
//! Every reproduction binary regenerates a paper figure as one or more
//! series of `(time, value)` samples. [`TimeSeries`] is the common container:
//! it keeps samples in time order, offers interpolation and summary
//! statistics, and renders itself as aligned plain-text columns so that the
//! harness output can be diffed or re-plotted.

use core::fmt;

use crate::quantity::Seconds;

/// A single `(time, value)` observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Time of the observation, from the start of the experiment.
    pub time: Seconds,
    /// Observed value (unit given by the series label).
    pub value: f64,
}

/// An append-only, time-ordered series of samples with a label.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    label: String,
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// Creates an empty series with a descriptive label (name and unit).
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            samples: Vec::new(),
        }
    }

    /// The series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last recorded sample (series are
    /// append-only in time order) or if either coordinate is NaN.
    pub fn push(&mut self, time: Seconds, value: f64) {
        assert!(!time.value().is_nan() && !value.is_nan(), "NaN sample");
        if let Some(last) = self.samples.last() {
            assert!(
                time >= last.time,
                "samples must be pushed in time order: {} < {}",
                time.value(),
                last.time.value()
            );
        }
        self.samples.push(Sample { time, value });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over the samples in time order.
    pub fn iter(&self) -> core::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// The samples as a slice.
    pub fn as_slice(&self) -> &[Sample] {
        &self.samples
    }

    /// First sample, if any.
    pub fn first(&self) -> Option<Sample> {
        self.samples.first().copied()
    }

    /// Last sample, if any.
    pub fn last(&self) -> Option<Sample> {
        self.samples.last().copied()
    }

    /// Minimum value over the series, if non-empty.
    pub fn min_value(&self) -> Option<f64> {
        self.samples.iter().map(|s| s.value).reduce(f64::min)
    }

    /// Maximum value over the series, if non-empty.
    pub fn max_value(&self) -> Option<f64> {
        self.samples.iter().map(|s| s.value).reduce(f64::max)
    }

    /// Linear interpolation of the value at `time`.
    ///
    /// Returns `None` outside the sampled time span or for an empty series.
    pub fn value_at(&self, time: Seconds) -> Option<f64> {
        let first = self.samples.first()?;
        let last = self.samples.last()?;
        if time < first.time || time > last.time {
            return None;
        }
        let idx = self.samples.partition_point(|s| s.time < time);
        if idx == 0 {
            return Some(first.value);
        }
        let hi = self.samples[idx.min(self.samples.len() - 1)];
        let lo = self.samples[idx - 1];
        if hi.time == lo.time {
            return Some(hi.value);
        }
        let w = (time - lo.time) / (hi.time - lo.time);
        Some(lo.value + w * (hi.value - lo.value))
    }

    /// First time at which the value crosses `threshold` from below
    /// (linearly interpolated). `None` if it never does.
    pub fn first_crossing_above(&self, threshold: f64) -> Option<Seconds> {
        let mut prev: Option<Sample> = None;
        for &s in &self.samples {
            if s.value >= threshold {
                if let Some(p) = prev {
                    if p.value < threshold && s.value != p.value {
                        let w = (threshold - p.value) / (s.value - p.value);
                        return Some(p.time + (s.time - p.time) * w);
                    }
                }
                return Some(s.time);
            }
            prev = Some(s);
        }
        None
    }

    /// Renders one or more series as an ASCII line plot (time on the x
    /// axis, shared y scale), so the reproduction binaries can show the
    /// paper figures' *shapes* directly in the terminal.
    ///
    /// Each series is drawn with its own glyph (`*`, `o`, `+`, `x`, …) and
    /// a legend line follows the plot. Empty input or all-empty series
    /// produce an explanatory placeholder string.
    pub fn render_plot(series: &[&TimeSeries], width: usize, height: usize) -> String {
        let width = width.clamp(16, 240);
        let height = height.clamp(4, 60);
        let glyphs = ['*', 'o', '+', 'x', '#', '@'];

        let t_min = series
            .iter()
            .filter_map(|s| s.first())
            .map(|p| p.time.value())
            .fold(f64::INFINITY, f64::min);
        let t_max = series
            .iter()
            .filter_map(|s| s.last())
            .map(|p| p.time.value())
            .fold(f64::NEG_INFINITY, f64::max);
        let v_min = series
            .iter()
            .filter_map(|s| s.min_value())
            .fold(f64::INFINITY, f64::min);
        let v_max = series
            .iter()
            .filter_map(|s| s.max_value())
            .fold(f64::NEG_INFINITY, f64::max);
        if !t_min.is_finite() || !t_max.is_finite() || t_max <= t_min {
            return "(no data to plot)\n".to_string();
        }
        let v_span = if v_max > v_min { v_max - v_min } else { 1.0 };

        let mut canvas = vec![vec![' '; width]; height];
        for (si, s) in series.iter().enumerate() {
            let glyph = glyphs[si % glyphs.len()];
            #[allow(clippy::needless_range_loop)] // col drives both t and canvas
            for col in 0..width {
                let t = t_min + (t_max - t_min) * col as f64 / (width - 1) as f64;
                if let Some(v) = s.value_at(Seconds::new(t)) {
                    let row = ((v_max - v) / v_span * (height - 1) as f64).round() as usize;
                    canvas[row.min(height - 1)][col] = glyph;
                }
            }
        }

        let mut out = String::new();
        for (row, line) in canvas.iter().enumerate() {
            let label = if row == 0 {
                format!("{v_max:>10.3} |")
            } else if row == height - 1 {
                format!("{v_min:>10.3} |")
            } else {
                format!("{:>10} |", "")
            };
            out.push_str(&label);
            out.extend(line.iter());
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>10} +{}\n{:>12}{:<12.1}{:>width$.1} (min)\n",
            "",
            "-".repeat(width),
            "",
            t_min / 60.0,
            t_max / 60.0,
            width = width - 12
        ));
        for (si, s) in series.iter().enumerate() {
            out.push_str(&format!(
                "{:>12} {} = {}\n",
                "",
                glyphs[si % glyphs.len()],
                s.label()
            ));
        }
        out
    }

    /// Renders several series that share a time axis as aligned plain-text
    /// columns (time in minutes), suitable for the reproduction binaries.
    ///
    /// Series need not have identical sample times; values are linearly
    /// interpolated onto the union of all sample times and absent ranges are
    /// printed as `-`.
    pub fn render_table(series: &[&TimeSeries]) -> String {
        let mut times: Vec<f64> = series
            .iter()
            .flat_map(|s| s.samples.iter().map(|x| x.time.value()))
            .collect();
        times.sort_by(f64::total_cmp);
        times.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut out = String::new();
        out.push_str(&format!("{:>12}", "t (min)"));
        for s in series {
            out.push_str(&format!("  {:>24}", s.label));
        }
        out.push('\n');
        for &t in &times {
            out.push_str(&format!("{:>12.2}", t / 60.0));
            for s in series {
                match s.value_at(Seconds::new(t)) {
                    Some(v) => out.push_str(&format!("  {v:>24.4}")),
                    None => out.push_str(&format!("  {:>24}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TimeSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.label)?;
        for s in &self.samples {
            writeln!(f, "{:.2}\t{:.6}", s.time.as_minutes(), s.value)?;
        }
        Ok(())
    }
}

impl Extend<Sample> for TimeSeries {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        for s in iter {
            self.push(s.time, s.value);
        }
    }
}

impl<'a> IntoIterator for &'a TimeSeries {
    type Item = &'a Sample;
    type IntoIter = core::slice::Iter<'a, Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(pts: &[(f64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new("test");
        for &(t, v) in pts {
            s.push(Seconds::new(t), v);
        }
        s
    }

    #[test]
    fn push_enforces_time_order() {
        let mut s = TimeSeries::new("x");
        s.push(Seconds::new(1.0), 0.0);
        s.push(Seconds::new(1.0), 1.0); // equal times allowed (step change)
        let result = std::panic::catch_unwind(move || {
            s.push(Seconds::new(0.5), 2.0);
        });
        assert!(result.is_err());
    }

    #[test]
    fn interpolation_is_linear() {
        let s = series(&[(0.0, 0.0), (10.0, 10.0)]);
        assert_eq!(s.value_at(Seconds::new(2.5)), Some(2.5));
        assert_eq!(s.value_at(Seconds::new(0.0)), Some(0.0));
        assert_eq!(s.value_at(Seconds::new(10.0)), Some(10.0));
        assert_eq!(s.value_at(Seconds::new(10.1)), None);
        assert_eq!(s.value_at(Seconds::new(-0.1)), None);
    }

    #[test]
    fn crossing_detection_interpolates() {
        let s = series(&[(0.0, 0.0), (10.0, 10.0)]);
        let t = s.first_crossing_above(5.0).unwrap();
        assert!((t.value() - 5.0).abs() < 1e-9);
        assert!(s.first_crossing_above(11.0).is_none());
    }

    #[test]
    fn crossing_at_first_sample() {
        let s = series(&[(0.0, 7.0), (10.0, 10.0)]);
        assert_eq!(s.first_crossing_above(5.0), Some(Seconds::new(0.0)));
    }

    #[test]
    fn min_max_values() {
        let s = series(&[(0.0, 3.0), (1.0, -2.0), (2.0, 5.0)]);
        assert_eq!(s.min_value(), Some(-2.0));
        assert_eq!(s.max_value(), Some(5.0));
        assert_eq!(TimeSeries::new("e").min_value(), None);
    }

    #[test]
    fn render_table_aligns_multiple_series() {
        let a = series(&[(0.0, 1.0), (60.0, 2.0)]);
        let b = series(&[(60.0, 5.0), (120.0, 6.0)]);
        let table = TimeSeries::render_table(&[&a, &b]);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 distinct times
        assert!(lines[0].contains("t (min)"));
        assert!(lines[1].contains('-')); // b absent at t=0
    }

    #[test]
    fn plot_renders_shapes_and_legend() {
        let rising = series(&[(0.0, 1.0), (600.0, 2.0)]);
        let falling = series(&[(0.0, 2.0), (600.0, 1.0)]);
        let plot = TimeSeries::render_plot(&[&rising, &falling], 40, 10);
        assert!(plot.contains('*') && plot.contains('o'));
        assert!(plot.contains("test")); // legend
        assert!(plot.contains("2.000") && plot.contains("1.000")); // y labels
                                                                   // The rising series starts at the bottom-left region and the
                                                                   // falling one at the top-left.
        let lines: Vec<&str> = plot.lines().collect();
        assert!(
            lines[0].contains('o'),
            "top row starts with the falling series"
        );
        assert!(
            lines[9].contains('o'),
            "bottom row ends with the falling series"
        );
    }

    #[test]
    fn plot_handles_empty_input() {
        assert_eq!(TimeSeries::render_plot(&[], 40, 10), "(no data to plot)\n");
        let empty = TimeSeries::new("e");
        assert_eq!(
            TimeSeries::render_plot(&[&empty], 40, 10),
            "(no data to plot)\n"
        );
    }

    #[test]
    fn plot_clamps_degenerate_dimensions() {
        let s = series(&[(0.0, 1.0), (60.0, 1.0)]);
        // Constant series, tiny canvas: must not panic or divide by zero.
        let plot = TimeSeries::render_plot(&[&s], 1, 1);
        assert!(plot.contains('*'));
    }

    #[test]
    fn display_renders_minutes() {
        let s = series(&[(120.0, 1.5)]);
        let text = s.to_string();
        assert!(text.contains("# test"));
        assert!(text.contains("2.00\t1.500000"));
    }
}
