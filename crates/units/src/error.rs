//! Error types for quantity validation.

use core::fmt;

/// Error returned when a physical quantity fails validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantityError {
    /// A temperature at or below absolute zero, NaN, or infinite.
    NonPhysicalTemperature(f64),
    /// A negative, NaN, or infinite duration.
    NegativeDuration(f64),
    /// A fraction outside `[0, 1]` or NaN.
    FractionOutOfRange(f64),
    /// A quantity that must be strictly positive was not.
    NotPositive {
        /// Human-readable name of the quantity that failed validation.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for QuantityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonPhysicalTemperature(v) => {
                write!(f, "non-physical absolute temperature: {v} K")
            }
            Self::NegativeDuration(v) => write!(f, "duration must be non-negative, got {v} s"),
            Self::FractionOutOfRange(v) => write!(f, "fraction must lie in [0, 1], got {v}"),
            Self::NotPositive { what, value } => {
                write!(f, "{what} must be strictly positive, got {value}")
            }
        }
    }
}

impl std::error::Error for QuantityError {}

/// Validates that a value is strictly positive and finite.
///
/// # Errors
///
/// Returns [`QuantityError::NotPositive`] otherwise.
pub fn ensure_positive(what: &'static str, value: f64) -> Result<f64, QuantityError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(QuantityError::NotPositive { what, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let msg = QuantityError::FractionOutOfRange(1.5).to_string();
        assert!(msg.starts_with("fraction"));
        let msg = QuantityError::NotPositive {
            what: "wire length",
            value: -1.0,
        }
        .to_string();
        assert_eq!(msg, "wire length must be strictly positive, got -1");
    }

    #[test]
    fn ensure_positive_accepts_and_rejects() {
        assert_eq!(ensure_positive("x", 2.0).unwrap(), 2.0);
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_positive("x", f64::NAN).is_err());
        assert!(ensure_positive("x", f64::INFINITY).is_err());
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_e: E) {}
        takes_err(QuantityError::NegativeDuration(-1.0));
    }
}
