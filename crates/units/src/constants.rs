//! Physical constants used across the wearout models.
//!
//! All values are CODATA-style SI values; the Boltzmann constant is provided
//! both in J/K and in eV/K because activation energies in the reliability
//! literature are universally quoted in electron-volts.

/// Boltzmann constant in joules per kelvin.
pub const BOLTZMANN_J_PER_K: f64 = 1.380_649e-23;

/// Boltzmann constant in electron-volts per kelvin.
pub const BOLTZMANN_EV_PER_K: f64 = 8.617_333_262e-5;

/// Elementary charge in coulombs.
pub const ELEMENTARY_CHARGE_C: f64 = 1.602_176_634e-19;

/// Absolute zero expressed in degrees Celsius.
pub const ABSOLUTE_ZERO_CELSIUS: f64 = -273.15;

/// Room temperature used throughout the paper's experiments, in Celsius.
pub const ROOM_TEMPERATURE_CELSIUS: f64 = 20.0;

/// Electrical resistivity of bulk copper at 20 °C, in ohm-metres.
///
/// Thin damascene lines are somewhat more resistive than bulk due to grain
/// and surface scattering; the EM wire model calibrates an effective
/// resistivity from the measured 35.76 Ω of the paper's test structure.
pub const COPPER_RESISTIVITY_OHM_M: f64 = 1.72e-8;

/// Temperature coefficient of resistance for copper, per kelvin.
pub const COPPER_TEMP_COEFF_PER_K: f64 = 3.93e-3;

/// Atomic volume of copper, in cubic metres.
pub const COPPER_ATOMIC_VOLUME_M3: f64 = 1.18e-29;

/// Effective charge number `Z*` for electromigration in copper interconnect.
///
/// Literature values for damascene Cu range roughly 0.4–1.0 depending on the
/// dominant diffusion path; we use a mid-range magnitude. The sign convention
/// (electron wind pushes atoms toward the anode) is handled by the EM model.
pub const COPPER_EFFECTIVE_CHARGE: f64 = 1.0;

/// Activation energy for Cu interface diffusion (capped damascene), in eV.
pub const COPPER_EM_ACTIVATION_EV: f64 = 0.86;

/// Effective bulk modulus `B` coupling atomic concentration changes to
/// hydrostatic stress in a confined damascene line, in pascals.
pub const DAMASCENE_EFFECTIVE_MODULUS_PA: f64 = 2.8e10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boltzmann_unit_conversion_is_consistent() {
        // k_B[eV/K] = k_B[J/K] / q
        let derived = BOLTZMANN_J_PER_K / ELEMENTARY_CHARGE_C;
        assert!((derived - BOLTZMANN_EV_PER_K).abs() / BOLTZMANN_EV_PER_K < 1e-9);
    }

    #[test]
    fn copper_resistivity_reproduces_paper_wire_resistance() {
        // Fig. 3 wire: 2.673 mm long, 1.57 µm wide, 0.8 µm thick, 35.76 Ω at
        // room temperature. Bulk resistivity should land within ~10 % (the
        // remainder is thin-film scattering, calibrated in dh-em).
        let r = COPPER_RESISTIVITY_OHM_M * 2.673e-3 / (1.57e-6 * 0.8e-6);
        assert!((r - 35.76).abs() / 35.76 < 0.12, "computed {r}");
    }
}
