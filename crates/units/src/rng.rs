//! Deterministic random-number seeding for reproducible experiments.
//!
//! Every stochastic component in the workspace (trap-ensemble sampling,
//! sensor noise, workload generation, Monte-Carlo lifetime sweeps) derives
//! its RNG from a named seed so that experiment output is bit-reproducible
//! run to run while different components stay statistically independent.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a 32-byte seed from a root seed and a component label.
///
/// The derivation is a simple FNV-1a-style mix — not cryptographic, but
/// stable across platforms and Rust versions, which is what reproducible
/// science needs.
pub fn derive_seed(root: u64, label: &str) -> [u8; 32] {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

    let mut h = FNV_OFFSET ^ root;
    for &b in label.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }

    let mut seed = [0_u8; 32];
    let mut state = h;
    for chunk in seed.chunks_mut(8) {
        // SplitMix64 finalizer to spread the hash over all 32 bytes.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        chunk.copy_from_slice(&z.to_le_bytes());
    }
    seed
}

/// Creates a deterministic [`StdRng`] for a named component.
///
/// # Examples
///
/// ```
/// use rand::Rng;
///
/// let mut a = dh_units::rng::seeded_rng(42, "bti-ensemble");
/// let mut b = dh_units::rng::seeded_rng(42, "bti-ensemble");
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(root: u64, label: &str) -> StdRng {
    StdRng::from_seed(derive_seed(root, label))
}

/// Derives the seed for one item of an indexed stream.
///
/// Mixes the item index into the label-derived seed with an extra
/// SplitMix64 round per lane, so every `(root, label, index)` triple
/// names an independent stream. This is what makes parallel Monte-Carlo
/// sweeps bit-identical to serial ones: item `i`'s randomness depends
/// only on the triple, never on which thread ran it or in what order.
pub fn derive_stream_seed(root: u64, label: &str, index: u64) -> [u8; 32] {
    let base = derive_seed(root, label);
    let mut seed = [0_u8; 32];
    // Golden-ratio offset keeps index 0 distinct from the plain label seed.
    let mut state = index.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x6a09_e667_f3bc_c909;
    for (chunk, lane) in seed.chunks_mut(8).zip(base.chunks(8)) {
        state = state.wrapping_add(u64::from_le_bytes(lane.try_into().expect("8-byte lane")));
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        chunk.copy_from_slice(&z.to_le_bytes());
    }
    seed
}

/// Creates the deterministic [`StdRng`] for item `index` of a named
/// stream (see [`derive_stream_seed`]).
///
/// # Examples
///
/// ```
/// use rand::Rng;
///
/// let mut a = dh_units::rng::seeded_stream_rng(42, "em-population", 3);
/// let mut b = dh_units::rng::seeded_stream_rng(42, "em-population", 3);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_stream_rng(root: u64, label: &str, index: u64) -> StdRng {
    StdRng::from_seed(derive_stream_seed(root, label, index))
}

/// Samples a standard normal deviate via Box–Muller.
///
/// Shared by every stochastic component in the workspace (trap-parameter
/// variation, sensor noise, process variation) so none needs a
/// distributions dependency.
pub fn standard_normal<R: rand::Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = seeded_rng(7, "x");
        let mut b = seeded_rng(7, "x");
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_different_streams() {
        let mut a = seeded_rng(7, "x");
        let mut b = seeded_rng(7, "y");
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_roots_different_streams() {
        let mut a = seeded_rng(1, "x");
        let mut b = seeded_rng(2, "x");
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn standard_normal_has_unit_moments() {
        let mut rng = seeded_rng(3, "normal-check");
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn stream_indices_are_independent_and_stable() {
        let mut a0 = seeded_stream_rng(7, "sweep", 0);
        let mut a0b = seeded_stream_rng(7, "sweep", 0);
        let mut a1 = seeded_stream_rng(7, "sweep", 1);
        let v0: Vec<u64> = (0..8).map(|_| a0.gen()).collect();
        let v0b: Vec<u64> = (0..8).map(|_| a0b.gen()).collect();
        let v1: Vec<u64> = (0..8).map(|_| a1.gen()).collect();
        assert_eq!(v0, v0b);
        assert_ne!(v0, v1);
        // Index 0 must not collapse onto the plain label stream.
        let mut plain = seeded_rng(7, "sweep");
        assert_ne!(v0[0], plain.gen::<u64>());
    }

    #[test]
    fn seed_spreads_entropy_across_all_bytes() {
        let s = derive_seed(0, "");
        // No 8-byte lane should be all zeros.
        for chunk in s.chunks(8) {
            assert!(chunk.iter().any(|&b| b != 0));
        }
    }
}
