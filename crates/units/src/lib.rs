//! Physical-quantity newtypes and shared utilities for the `deep-healing`
//! workspace.
//!
//! The wearout models in this workspace mix voltages, temperatures, current
//! densities, times and resistances in long calibration formulas; mixing up a
//! Celsius with a Kelvin or an A/m² with an MA/cm² is exactly the kind of bug
//! that silently ruins a reproduction. This crate provides:
//!
//! * zero-cost newtypes for every physical quantity the models use
//!   ([`Volts`], [`Kelvin`], [`Celsius`], [`Seconds`], [`Ohms`], [`Amperes`],
//!   [`CurrentDensity`], [`Hertz`], [`Pascals`]),
//! * physical constants ([`constants`]),
//! * Arrhenius acceleration helpers ([`arrhenius`]),
//! * a deterministic RNG seeding scheme ([`rng`]),
//! * a small [`TimeSeries`] container used by the experiment harness to
//!   collect and print figure data.
//!
//! # Examples
//!
//! ```
//! use dh_units::{Celsius, Seconds, arrhenius};
//!
//! let room = Celsius::new(20.0).to_kelvin();
//! let hot = Celsius::new(110.0).to_kelvin();
//! // Diffusion roughly 10⁴× faster at 110 °C for an activation energy near 1 eV:
//! let accel = arrhenius::acceleration_factor(1.0, room, hot);
//! assert!(accel > 1.0e4 && accel < 2.0e4);
//!
//! let six_hours = Seconds::from_hours(6.0);
//! assert_eq!(six_hours.as_minutes(), 360.0);
//! ```

#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > 0.0)` deliberately catches NaN
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrhenius;
pub mod constants;
pub mod error;
pub mod quantity;
pub mod rng;
pub mod series;

pub use error::QuantityError;
pub use quantity::{
    Amperes, Celsius, CurrentDensity, Fraction, Hertz, Kelvin, Ohms, Pascals, Seconds, Volts,
};
pub use series::{Sample, TimeSeries};
