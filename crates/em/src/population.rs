//! Wire-population statistics: Monte-Carlo TTF distributions from the
//! physics simulator.
//!
//! Black's equation (see [`crate::black`]) *assumes* a log-normal TTF
//! population. This module derives the population from the PDE model
//! instead: process variation is sampled as log-normal perturbations of
//! the diffusivity prefactor and critical stress, each sampled wire is
//! simulated to hard failure, and the resulting TTF set is summarised.
//! A consistency test (and the `lifetime_sim` bench) checks that the
//! fitted log-sigma is in the range the Black model uses — tying the
//! closed-form fleet statistics back to the physics.

use rand::rngs::StdRng;

use dh_units::{CurrentDensity, Pascals, Seconds};

use crate::error::EmError;
use crate::material::EmMaterial;
use crate::sim::EmWire;
use crate::wire::WireGeometry;

/// Process-variation magnitudes for the sampled population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// 1-sigma of ln(D₀): grain-structure / interface-quality variation.
    pub sigma_ln_d0: f64,
    /// 1-sigma of ln(σ_crit): liner-adhesion / flaw-size variation.
    pub sigma_ln_crit: f64,
}

impl Default for VariationModel {
    fn default() -> Self {
        // Together these produce ≈0.3 of ln-TTF spread — the classic EM
        // log-normal sigma used by the Black model.
        Self {
            sigma_ln_d0: 0.18,
            sigma_ln_crit: 0.12,
        }
    }
}

/// Summary of a simulated TTF population.
#[derive(Debug, Clone, PartialEq)]
pub struct TtfPopulation {
    /// Individual times to failure, sorted ascending.
    pub ttfs: Vec<Seconds>,
    /// Wires that survived the simulation horizon (censored).
    pub censored: usize,
}

impl TtfPopulation {
    /// Median TTF (of the failed wires): the middle element for odd
    /// sample counts, the midpoint of the two middle elements for even
    /// counts.
    ///
    /// # Errors
    ///
    /// [`EmError::EmptyPopulation`] if nothing failed.
    pub fn median(&self) -> Result<Seconds, EmError> {
        let n = self.ttfs.len();
        if n == 0 {
            return Err(EmError::EmptyPopulation);
        }
        if n % 2 == 1 {
            Ok(self.ttfs[n / 2])
        } else {
            Ok(Seconds::new(
                0.5 * (self.ttfs[n / 2 - 1].value() + self.ttfs[n / 2].value()),
            ))
        }
    }

    /// Sample standard deviation of ln(TTF) (of the failed wires), using
    /// the unbiased n−1 (Bessel-corrected) variance estimator — the
    /// divide-by-n form systematically understates the spread of the
    /// small populations the repro binaries fit.
    ///
    /// # Errors
    ///
    /// [`EmError::EmptyPopulation`] if nothing failed,
    /// [`EmError::InsufficientSamples`] with a single failure (a spread
    /// cannot be estimated from one sample).
    pub fn ln_sigma(&self) -> Result<f64, EmError> {
        let n = self.ttfs.len();
        if n == 0 {
            return Err(EmError::EmptyPopulation);
        }
        if n < 2 {
            return Err(EmError::InsufficientSamples { got: n, need: 2 });
        }
        let logs: Vec<f64> = self.ttfs.iter().map(|t| t.value().ln()).collect();
        let mean = logs.iter().sum::<f64>() / n as f64;
        let var = logs.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / (n - 1) as f64;
        Ok(var.sqrt())
    }

    /// The `q`-quantile TTF of the failed wires (`q ∈ [0, 1]`).
    ///
    /// # Errors
    ///
    /// [`EmError::EmptyPopulation`] if nothing failed (the nearest-rank
    /// index `q · (len − 1)` would underflow).
    pub fn quantile(&self, q: f64) -> Result<Seconds, EmError> {
        if self.ttfs.is_empty() {
            return Err(EmError::EmptyPopulation);
        }
        let idx = ((q.clamp(0.0, 1.0)) * (self.ttfs.len() - 1) as f64).round() as usize;
        Ok(self.ttfs[idx])
    }
}

/// Samples `n` wires with process variation and simulates each to failure
/// under constant stress `j` (or to `horizon`, counting it as censored).
///
/// Uses a coarser mesh (61 nodes) than the single-wire studies: the TTF is
/// dominated by nucleation + growth timescales that the coarse mesh
/// resolves within a few percent, and the population needs throughput.
///
/// Wires simulate in parallel through [`dh_exec::par_map_seeded`]: wire
/// `i` draws its process variation from the `(seed, "em-population", i)`
/// stream, so the population is bit-identical at any thread count — and
/// a wire's sample no longer shifts when `n` changes below it.
pub fn simulate_population(
    n: usize,
    j: CurrentDensity,
    variation: VariationModel,
    horizon: Seconds,
    seed: u64,
) -> TtfPopulation {
    let _timer = dh_obs::span("em.population.sweep_seconds");
    dh_obs::counter!("em.population.sweeps").incr();
    dh_obs::counter!("em.population.wires_simulated").add(n as u64);
    let outcomes = dh_exec::par_map_seeded(seed, "em-population", n, |_, rng| {
        simulate_one_wire(j, variation, horizon, rng)
    });

    let mut ttfs = Vec::new();
    let mut censored = 0;
    for outcome in outcomes {
        match outcome {
            Some(ttf) => ttfs.push(ttf),
            None => censored += 1,
        }
    }
    ttfs.sort_by(|a, b| a.value().total_cmp(&b.value()));
    dh_obs::counter!("em.population.wires_failed").add(ttfs.len() as u64);
    dh_obs::counter!("em.population.wires_censored").add(censored as u64);
    TtfPopulation { ttfs, censored }
}

/// One sampled wire: `Some(ttf)` on failure, `None` if censored at the
/// horizon. The PDE stops sub-stepping at failure internally, so a single
/// `advance` over the whole horizon resolves the TTF at substep
/// resolution without the old outer 10-minute loop re-deriving the
/// transport coefficients dozens of times.
fn simulate_one_wire(
    j: CurrentDensity,
    variation: VariationModel,
    horizon: Seconds,
    mut rng: StdRng,
) -> Option<Seconds> {
    let mut material = EmMaterial::damascene_copper();
    material.d0_m2_per_s *= lognormal(&mut rng, variation.sigma_ln_d0);
    material.critical_stress = Pascals::new(
        material.critical_stress.value() * lognormal(&mut rng, variation.sigma_ln_crit),
    );
    let mut wire = EmWire::new(
        WireGeometry::paper(),
        material,
        dh_units::Celsius::new(230.0).to_kelvin(),
        61,
    )
    .expect("perturbed material stays valid");

    wire.advance(horizon, j);
    wire.is_failed().then(|| wire.time())
}

/// The pre-`dh-exec` population loop (shared sequential RNG, 10-minute
/// outer stepping): kept as the measured serial baseline for
/// `perf_snapshot`. Not part of the API.
#[doc(hidden)]
pub fn simulate_population_baseline(
    n: usize,
    j: CurrentDensity,
    variation: VariationModel,
    horizon: Seconds,
    seed: u64,
) -> TtfPopulation {
    let mut rng = dh_units::rng::seeded_rng(seed, "em-population");
    let base = EmMaterial::damascene_copper();
    let mut ttfs = Vec::new();
    let mut censored = 0;

    for _ in 0..n {
        let mut material = base;
        material.d0_m2_per_s *= lognormal(&mut rng, variation.sigma_ln_d0);
        material.critical_stress = Pascals::new(
            material.critical_stress.value() * lognormal(&mut rng, variation.sigma_ln_crit),
        );
        let mut wire = EmWire::new(
            WireGeometry::paper(),
            material,
            dh_units::Celsius::new(230.0).to_kelvin(),
            61,
        )
        .expect("perturbed material stays valid");

        let step = Seconds::from_minutes(10.0);
        let mut t = Seconds::ZERO;
        while t < horizon && !wire.is_failed() {
            wire.advance_reference(step, j);
            t += step;
        }
        if wire.is_failed() {
            ttfs.push(wire.time());
        } else {
            censored += 1;
        }
    }
    ttfs.sort_by(|a, b| a.value().total_cmp(&b.value()));
    TtfPopulation { ttfs, censored }
}

fn lognormal(rng: &mut StdRng, sigma: f64) -> f64 {
    (sigma * dh_units::rng::standard_normal(rng)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population(n: usize) -> TtfPopulation {
        simulate_population(
            n,
            CurrentDensity::from_ma_per_cm2(7.96),
            VariationModel::default(),
            Seconds::from_hours(48.0),
            17,
        )
    }

    #[test]
    fn every_wire_fails_under_accelerated_stress() {
        let pop = population(24);
        assert_eq!(pop.censored, 0, "48 h horizon must out-last all wires");
        assert_eq!(pop.ttfs.len(), 24);
    }

    #[test]
    fn median_is_near_the_nominal_wire() {
        let pop = population(24);
        let median = pop.median().unwrap().as_hours();
        // Nominal continuous-stress failure is ≈11.5 h.
        assert!((8.0..16.0).contains(&median), "median {median} h");
    }

    #[test]
    fn ln_sigma_matches_the_black_model_assumption() {
        let pop = population(40);
        let sigma = pop.ln_sigma().unwrap();
        assert!(
            (0.1..0.6).contains(&sigma),
            "physics-derived ln-sigma {sigma} should bracket Black's 0.3"
        );
    }

    #[test]
    fn quantiles_are_ordered() {
        let pop = population(24);
        let q10 = pop.quantile(0.1).unwrap();
        let q50 = pop.quantile(0.5).unwrap();
        let q90 = pop.quantile(0.9).unwrap();
        assert!(q10 <= q50 && q50 <= q90);
        assert!(q90.value() > q10.value(), "population must actually spread");
    }

    #[test]
    fn zero_variation_collapses_the_spread() {
        let tight = simulate_population(
            8,
            CurrentDensity::from_ma_per_cm2(7.96),
            VariationModel {
                sigma_ln_d0: 0.0,
                sigma_ln_crit: 0.0,
            },
            Seconds::from_hours(48.0),
            3,
        );
        let sigma = tight.ln_sigma().unwrap();
        assert!(
            sigma < 0.02,
            "identical wires must fail together, sigma {sigma}"
        );
    }

    #[test]
    fn median_interpolates_even_length_samples() {
        let even = TtfPopulation {
            ttfs: vec![
                Seconds::new(2.0),
                Seconds::new(4.0),
                Seconds::new(10.0),
                Seconds::new(20.0),
            ],
            censored: 0,
        };
        assert_eq!(even.median().unwrap().value(), 7.0);
        let odd = TtfPopulation {
            ttfs: vec![Seconds::new(2.0), Seconds::new(4.0), Seconds::new(10.0)],
            censored: 0,
        };
        assert_eq!(odd.median().unwrap().value(), 4.0);
        let single = TtfPopulation {
            ttfs: vec![Seconds::new(3.0)],
            censored: 0,
        };
        assert_eq!(single.median().unwrap().value(), 3.0);
        let pair = TtfPopulation {
            ttfs: vec![Seconds::new(3.0), Seconds::new(5.0)],
            censored: 0,
        };
        assert_eq!(pair.median().unwrap().value(), 4.0);
    }

    #[test]
    fn empty_population_returns_typed_errors() {
        let pop = TtfPopulation {
            ttfs: vec![],
            censored: 5,
        };
        assert_eq!(pop.median(), Err(EmError::EmptyPopulation));
        assert_eq!(pop.ln_sigma(), Err(EmError::EmptyPopulation));
        assert_eq!(pop.quantile(0.5), Err(EmError::EmptyPopulation));
        assert_eq!(pop.quantile(0.0), Err(EmError::EmptyPopulation));
        assert_eq!(pop.quantile(1.0), Err(EmError::EmptyPopulation));
    }

    #[test]
    fn one_element_population_has_location_but_no_spread() {
        let pop = TtfPopulation {
            ttfs: vec![Seconds::new(9.0)],
            censored: 0,
        };
        assert_eq!(pop.median().unwrap().value(), 9.0);
        assert_eq!(pop.quantile(0.0).unwrap().value(), 9.0);
        assert_eq!(pop.quantile(1.0).unwrap().value(), 9.0);
        assert_eq!(
            pop.ln_sigma(),
            Err(EmError::InsufficientSamples { got: 1, need: 2 })
        );
    }

    #[test]
    fn ln_sigma_uses_the_sample_variance_estimator() {
        // ln-TTFs 0 and ln(e²) = 2: sample variance (n−1) is 2, so the
        // estimator must return √2 — the biased divide-by-n form would
        // give 1.
        let pop = TtfPopulation {
            ttfs: vec![Seconds::new(1.0), Seconds::new(std::f64::consts::E.powi(2))],
            censored: 0,
        };
        let sigma = pop.ln_sigma().unwrap();
        assert!(
            (sigma - std::f64::consts::SQRT_2).abs() < 1e-12,
            "expected √2, got {sigma}"
        );
    }
}
