//! Multi-segment interconnect networks: current redistribution, failure
//! cascades, and redundancy.
//!
//! The paper's assist circuitry protects *grids* — networks of short local
//! segments — not single test wires, and the microarchitectural EM
//! literature it builds on (Abella et al.'s *Refueling*, its ref. [24])
//! reasons about redundant paths. This module wires several
//! [`EmWire`] simulators into a resistive network:
//!
//! * per step, segment currents come from a nodal solve over the segments'
//!   *present* resistances (void growth raises a segment's resistance,
//!   shedding current onto its neighbours — the well-known EM
//!   self-limiting/redistribution effect);
//! * a segment that reaches its break length goes open and the network
//!   re-solves — surviving paths inherit the full current, which
//!   accelerates their wearout (failure cascade);
//! * the network fails when source and sink disconnect.
//!
//! Reversing the source current heals every segment at once, exactly like
//! the assist circuitry's *EM Active Recovery* mode on a local grid.

use dh_units::{Amperes, CurrentDensity, Kelvin, Ohms, Seconds};

use crate::error::EmError;
use crate::material::EmMaterial;
use crate::sim::EmWire;
use crate::wire::WireGeometry;

/// Mesh resolution used for network segments (short wires, mild
/// clustering, so the explicit stability step stays tens of seconds).
const SEGMENT_NODES: usize = 61;
const SEGMENT_CLUSTERING: f64 = 0.3;

/// One segment of the network.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Network nodes this segment connects.
    pub from: usize,
    /// Network nodes this segment connects.
    pub to: usize,
    /// The segment's EM simulator.
    pub wire: EmWire,
}

impl Segment {
    /// Whether this segment has failed open.
    pub fn is_failed(&self) -> bool {
        self.wire.is_failed()
    }
}

/// A resistive interconnect network under EM.
#[derive(Debug, Clone, PartialEq)]
pub struct EmNetwork {
    nodes: usize,
    segments: Vec<Segment>,
    source: usize,
    sink: usize,
    time: Seconds,
}

impl EmNetwork {
    /// Builds a network. `edges` are `(from, to, length_m)` triples; all
    /// segments share `width`/`thickness` (local-grid wires), material and
    /// temperature. Node `source` injects the supply current, node `sink`
    /// returns it.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidMesh`] for empty networks or out-of-range
    /// node indices, and propagates geometry/material validation.
    #[allow(clippy::too_many_arguments)] // a topology is naturally wide
    pub fn new(
        nodes: usize,
        edges: &[(usize, usize, f64)],
        width_m: f64,
        thickness_m: f64,
        material: EmMaterial,
        temperature: Kelvin,
        source: usize,
        sink: usize,
    ) -> Result<Self, EmError> {
        if nodes < 2 || edges.is_empty() {
            return Err(EmError::InvalidMesh(
                "network needs ≥2 nodes and ≥1 segment".into(),
            ));
        }
        if source >= nodes || sink >= nodes || source == sink {
            return Err(EmError::InvalidMesh(format!(
                "source/sink out of range or equal: {source}/{sink} of {nodes}"
            )));
        }
        let paper = WireGeometry::paper();
        let rho = paper.effective_resistivity_ohm_m();
        let mut segments = Vec::with_capacity(edges.len());
        for &(from, to, length_m) in edges {
            if from >= nodes || to >= nodes || from == to {
                return Err(EmError::InvalidMesh(format!(
                    "segment {from}→{to} out of range or degenerate"
                )));
            }
            let geometry = WireGeometry {
                length_m,
                width_m,
                thickness_m,
                resistance_at_room: Ohms::new(rho * length_m / (width_m * thickness_m)),
                tcr_per_k: paper.tcr_per_k,
            };
            let wire = EmWire::with_clustering(
                geometry,
                material,
                temperature,
                SEGMENT_NODES,
                SEGMENT_CLUSTERING,
            )?;
            segments.push(Segment { from, to, wire });
        }
        Ok(Self {
            nodes,
            segments,
            source,
            sink,
            time: Seconds::ZERO,
        })
    }

    /// A two-branch redundant local-grid strap: source and sink connected
    /// by parallel 140 µm and 180 µm segments of 0.4 µm × 0.35 µm wire at
    /// 230 °C (accelerated-test conditions). The length asymmetry is
    /// deliberate: the shorter, lower-resistance branch draws more current
    /// density, fails first, and dumps its load on the survivor — the
    /// cascade every redundant layout must be sized for.
    ///
    /// # Panics
    ///
    /// Never panics: the built-in parameters are valid.
    pub fn redundant_pair() -> Self {
        Self::new(
            2,
            &[(0, 1, 140.0e-6), (0, 1, 180.0e-6)],
            0.4e-6,
            0.35e-6,
            EmMaterial::damascene_copper(),
            dh_units::Celsius::new(230.0).to_kelvin(),
            0,
            1,
        )
        .expect("built-in network is valid")
    }

    /// The segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Elapsed time.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Number of failed segments.
    pub fn failed_segments(&self) -> usize {
        self.segments.iter().filter(|s| s.is_failed()).count()
    }

    /// Whether the network still conducts from source to sink.
    pub fn is_connected(&self) -> bool {
        // Union-find-free BFS over live segments.
        let mut reach = vec![false; self.nodes];
        reach[self.source] = true;
        let mut frontier = vec![self.source];
        while let Some(n) = frontier.pop() {
            for s in self.segments.iter().filter(|s| !s.is_failed()) {
                let other = if s.from == n {
                    s.to
                } else if s.to == n {
                    s.from
                } else {
                    continue;
                };
                if !reach[other] {
                    reach[other] = true;
                    frontier.push(other);
                }
            }
        }
        reach[self.sink]
    }

    /// The per-segment currents (amperes, signed from→to) for a supply
    /// current injected at the source, via a dense nodal solve over the
    /// live segments' present resistances.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::Disconnected`] when source and sink no longer
    /// connect, and [`EmError::InvalidMesh`] if the nodal system of the
    /// surviving segments is singular (degenerate resistances).
    pub fn segment_currents(&self, supply: Amperes) -> Result<Vec<Amperes>, EmError> {
        if !self.is_connected() {
            return Err(EmError::Disconnected {
                failed_segments: self.failed_segments(),
            });
        }
        // Nodal system with the sink as ground.
        let n = self.nodes;
        let mut g = vec![0.0; n * n];
        for s in self.segments.iter().filter(|s| !s.is_failed()) {
            let r = s.wire.resistance().value();
            if !(r.is_finite() && r > 0.0) {
                continue;
            }
            let cond = 1.0 / r;
            g[s.from * n + s.from] += cond;
            g[s.to * n + s.to] += cond;
            g[s.from * n + s.to] -= cond;
            g[s.to * n + s.from] -= cond;
        }
        let mut rhs = vec![0.0; n];
        rhs[self.source] = supply.value();
        // Ground the sink row.
        for k in 0..n {
            g[self.sink * n + k] = 0.0;
        }
        g[self.sink * n + self.sink] = 1.0;
        rhs[self.sink] = 0.0;

        let v = dense_solve(&mut g, &mut rhs, n)
            .ok_or_else(|| EmError::InvalidMesh("singular nodal system".into()))?;
        Ok(self
            .segments
            .iter()
            .map(|s| {
                if s.is_failed() {
                    Amperes::ZERO
                } else {
                    Amperes::new((v[s.from] - v[s.to]) / s.wire.resistance().value())
                }
            })
            .collect())
    }

    /// Advances the network by `dt` with a supply current (signed: negative
    /// is the EM-active-recovery direction). Currents are re-solved every
    /// internal interval so redistribution and cascades are captured.
    pub fn advance(&mut self, dt: Seconds, supply: Amperes) {
        let resolve_every = Seconds::from_minutes(10.0);
        let mut remaining = dt;
        while remaining.value() > 0.0 {
            let step = remaining.min(resolve_every);
            let Ok(currents) = self.segment_currents(supply) else {
                // Dead network: time still passes.
                self.time += remaining;
                return;
            };
            for (segment, current) in self.segments.iter_mut().zip(&currents) {
                let area = segment.wire.geometry().cross_section_m2();
                let j = CurrentDensity::new(current.value() / area);
                segment.wire.advance(step, j);
            }
            self.time += step;
            remaining -= step;
        }
    }

    /// Runs until disconnection or `horizon`, returning the network TTF
    /// (`None` if it survives).
    pub fn time_to_disconnect(&mut self, supply: Amperes, horizon: Seconds) -> Option<Seconds> {
        let step = Seconds::from_minutes(30.0);
        while self.time < horizon {
            self.advance(step, supply);
            if !self.is_connected() {
                return Some(self.time);
            }
        }
        None
    }
}

/// Gaussian elimination with partial pivoting on a dense system.
fn dense_solve(a: &mut [f64], b: &mut [f64], n: usize) -> Option<Vec<f64>> {
    for col in 0..n {
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            if a[row * n + col].abs() > best {
                best = a[row * n + col].abs();
                pivot = row;
            }
        }
        if best < 1e-18 {
            return None;
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        let d = a[col * n + col];
        for row in (col + 1)..n {
            let f = a[row * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= f * a[col * n + k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in (row + 1)..n {
            sum -= a[row * n + k] * x[k];
        }
        x[row] = sum / a[row * n + row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Supply current giving ≈8 MA/cm² in the *short* branch of the pair
    /// at time zero (accelerated-test scale on 0.14 µm² wires).
    fn supply() -> Amperes {
        // The 140 µm branch takes 180/(140+180) of the supply.
        Amperes::new(8.0e10 * 0.4e-6 * 0.35e-6 * 320.0 / 180.0)
    }

    #[test]
    fn currents_split_by_branch_conductance() -> Result<(), EmError> {
        let net = EmNetwork::redundant_pair();
        let currents = net.segment_currents(supply())?;
        assert_eq!(currents.len(), 2);
        // Inverse-length split: I_short/I_long = 180/140.
        let ratio = currents[0].value() / currents[1].value();
        assert!((ratio - 180.0 / 140.0).abs() < 1e-9, "split ratio {ratio}");
        let total = currents[0].value() + currents[1].value();
        assert!((total - supply().value()).abs() / supply().value() < 1e-9);
        Ok(())
    }

    #[test]
    fn voided_branch_sheds_current_onto_its_twin() -> Result<(), EmError> {
        let mut net = EmNetwork::redundant_pair();
        // Age the pair until at least one branch has a void.
        net.advance(Seconds::from_hours(6.0), supply());
        // Grow some resistance asymmetry by perturbing one branch directly:
        // advance only the network long enough that voids exist.
        let currents = net.segment_currents(supply())?;
        let r0 = net.segments()[0].wire.resistance().value();
        let r1 = net.segments()[1].wire.resistance().value();
        if (r0 - r1).abs() > 1e-9 {
            // Higher-resistance branch must carry less current.
            let (hi, lo) = if r0 > r1 { (0, 1) } else { (1, 0) };
            assert!(currents[hi].value() <= currents[lo].value() + 1e-15);
        }
        // Conservation regardless.
        let total = currents[0].value() + currents[1].value();
        assert!((total - supply().value()).abs() / supply().value() < 1e-9);
        Ok(())
    }

    #[test]
    fn failure_cascades_and_disconnects_the_network() -> Result<(), EmError> {
        let mut net = EmNetwork::redundant_pair();
        let ttf = net.time_to_disconnect(supply(), Seconds::from_hours(80.0));
        let ttf = ttf.ok_or(EmError::EmptyPopulation)?;
        assert_eq!(
            net.failed_segments(),
            2,
            "both branches must eventually fail"
        );
        assert!(!net.is_connected());
        assert!(ttf > Seconds::from_hours(1.0));
        Ok(())
    }

    #[test]
    fn redundancy_extends_but_does_not_double_lifetime() -> Result<(), EmError> {
        // The short branch alone, carrying its initial share, fails at t₁.
        // The pair disconnects later (the long branch survives the first
        // failure) but the survivor inherits the FULL supply, so the
        // extension falls far short of doubling — the cascade effect.
        let short_share = Amperes::new(supply().value() * 180.0 / 320.0);
        let mut single = EmNetwork::new(
            2,
            &[(0, 1, 140.0e-6)],
            0.4e-6,
            0.35e-6,
            EmMaterial::damascene_copper(),
            dh_units::Celsius::new(230.0).to_kelvin(),
            0,
            1,
        )?;
        let t_single = single
            .time_to_disconnect(short_share, Seconds::from_hours(120.0))
            .ok_or(EmError::EmptyPopulation)?;

        let mut pair = EmNetwork::redundant_pair();
        let t_pair = pair
            .time_to_disconnect(supply(), Seconds::from_hours(240.0))
            .ok_or(EmError::EmptyPopulation)?;
        assert!(t_pair > t_single, "pair {t_pair:?} vs single {t_single:?}");
        assert!(
            t_pair < t_single * 1.9,
            "cascade should prevent a full 2x: pair {:.1} h vs single {:.1} h",
            t_pair.as_hours(),
            t_single.as_hours()
        );
        Ok(())
    }

    #[test]
    fn reverse_supply_heals_the_whole_network() {
        let mut net = EmNetwork::redundant_pair();
        net.advance(Seconds::from_hours(8.0), supply());
        let worn: f64 = net
            .segments()
            .iter()
            .map(|s| s.wire.delta_resistance().value())
            .sum();
        assert!(worn > 0.0, "branches should have voided by 8 h");
        net.advance(Seconds::from_hours(2.0), -supply());
        let healed: f64 = net
            .segments()
            .iter()
            .map(|s| s.wire.delta_resistance().value())
            .sum();
        assert!(
            healed < 0.4 * worn,
            "reverse current must heal: {worn} → {healed}"
        );
    }

    #[test]
    fn invalid_topologies_are_rejected() {
        let m = EmMaterial::damascene_copper();
        let t = dh_units::Celsius::new(230.0).to_kelvin();
        assert!(EmNetwork::new(1, &[(0, 0, 1e-4)], 4e-7, 3e-7, m, t, 0, 0).is_err());
        assert!(EmNetwork::new(2, &[], 4e-7, 3e-7, m, t, 0, 1).is_err());
        assert!(EmNetwork::new(2, &[(0, 5, 1e-4)], 4e-7, 3e-7, m, t, 0, 1).is_err());
        assert!(EmNetwork::new(2, &[(0, 1, 1e-4)], 4e-7, 3e-7, m, t, 0, 0).is_err());
    }

    #[test]
    fn disconnected_network_reports_a_typed_error() -> Result<(), EmError> {
        let mut net = EmNetwork::redundant_pair();
        net.time_to_disconnect(supply(), Seconds::from_hours(80.0))
            .ok_or(EmError::EmptyPopulation)?;
        let err = net.segment_currents(supply()).unwrap_err();
        assert_eq!(err, EmError::Disconnected { failed_segments: 2 });
        // Advancing a dead network only passes time.
        let t = net.time();
        net.advance(Seconds::from_hours(1.0), supply());
        assert_eq!(net.time(), t + Seconds::from_hours(1.0));
        Ok(())
    }
}
