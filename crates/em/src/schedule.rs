//! EM stress/recovery scheduling experiments (the paper's Figs. 5–7).
//!
//! Three experiment drivers, each returning labelled [`TimeSeries`] data for
//! the reproduction harness:
//!
//! * [`stress_recovery_experiment`] — Fig. 5: long accelerated stress
//!   through nucleation and void growth, then recovery (active vs passive
//!   branches), exposing the permanent component;
//! * [`early_recovery_experiment`] — Fig. 6: recovery scheduled early in
//!   void growth (full recovery) followed by sustained reverse current
//!   (reverse-direction EM);
//! * [`periodic_recovery_experiment`] — Fig. 7: short recovery intervals
//!   during the nucleation phase delay nucleation and extend TTF.

use dh_units::{CurrentDensity, Seconds, TimeSeries};

use crate::sim::{EmWire, WireEnd};

/// Sampling interval for the recorded resistance traces.
const SAMPLE_EVERY: Seconds = Seconds::new(120.0);

/// Outcome of the Fig. 5-style stress + recovery experiment.
#[derive(Debug, Clone)]
pub struct StressRecoveryOutcome {
    /// Resistance trace for stress followed by *active + accelerated*
    /// recovery (reverse current at oven temperature).
    pub active: TimeSeries,
    /// Resistance trace for stress followed by *passive* recovery (current
    /// off at oven temperature).
    pub passive: TimeSeries,
    /// Time at which the void nucleated (start of resistance rise).
    pub nucleation_time: Option<Seconds>,
    /// Resistance increase at the end of stress, ohms.
    pub delta_r_peak: f64,
    /// Fraction of the increase recovered by the active branch.
    pub active_recovered_fraction: f64,
    /// Fraction recovered by the passive branch.
    pub passive_recovered_fraction: f64,
    /// Permanent resistance increase remaining after active recovery, ohms.
    pub permanent_delta_r: f64,
}

/// Runs the Fig. 5 experiment: `stress_time` of forward current, then
/// `recovery_time` of recovery — one branch active (reverse current), one
/// passive (no current) — all at the wire's oven temperature.
pub fn stress_recovery_experiment(
    mut wire: EmWire,
    j: CurrentDensity,
    stress_time: Seconds,
    recovery_time: Seconds,
) -> StressRecoveryOutcome {
    let mut active = TimeSeries::new("R (ohm), accelerated stress + active recovery");
    let mut passive = TimeSeries::new("R (ohm), accelerated stress + passive recovery");
    let mut nucleation_time = None;

    record(&mut active, &wire);
    record(&mut passive, &wire);
    let mut t = Seconds::ZERO;
    while t < stress_time {
        wire.advance(SAMPLE_EVERY, j);
        t += SAMPLE_EVERY;
        if nucleation_time.is_none() && wire.has_void() {
            nucleation_time = Some(t);
        }
        record(&mut active, &wire);
        record(&mut passive, &wire);
    }
    let delta_r_peak = wire.delta_resistance().value();

    let mut passive_wire = wire.clone();
    let mut t = Seconds::ZERO;
    while t < recovery_time {
        wire.advance(SAMPLE_EVERY, -j);
        passive_wire.advance(SAMPLE_EVERY, CurrentDensity::ZERO);
        t += SAMPLE_EVERY;
        record(&mut active, &wire);
        record(&mut passive, &passive_wire);
    }

    let active_rec = recovered_fraction(delta_r_peak, wire.delta_resistance().value());
    let passive_rec = recovered_fraction(delta_r_peak, passive_wire.delta_resistance().value());
    StressRecoveryOutcome {
        active,
        passive,
        nucleation_time,
        delta_r_peak,
        active_recovered_fraction: active_rec,
        passive_recovered_fraction: passive_rec,
        permanent_delta_r: wire.delta_resistance().value(),
    }
}

/// Outcome of the Fig. 6-style early-recovery experiment.
#[derive(Debug, Clone)]
pub struct EarlyRecoveryOutcome {
    /// Resistance trace across stress, early recovery, and over-recovery.
    pub trace: TimeSeries,
    /// Resistance increase when recovery started, ohms.
    pub delta_r_at_recovery_start: f64,
    /// Minimum resistance increase reached (full recovery ⇒ ≈0), ohms.
    pub delta_r_after_recovery: f64,
    /// Whether sustained reverse current re-stressed the wire (reverse EM:
    /// tension or a void at the anode end).
    pub reverse_em_observed: bool,
}

/// Runs the Fig. 6 experiment: stress until `growth_time` past nucleation,
/// then hold the reverse current for `reverse_time` (long enough to both
/// fully heal and demonstrate reverse-direction EM).
pub fn early_recovery_experiment(
    mut wire: EmWire,
    j: CurrentDensity,
    growth_time: Seconds,
    reverse_time: Seconds,
) -> EarlyRecoveryOutcome {
    let mut trace = TimeSeries::new("R (ohm), early recovery then reverse stress");
    record(&mut trace, &wire);
    // Stress through nucleation.
    let guard = Seconds::from_hours(12.0);
    while !wire.has_void() && wire.time() < guard {
        wire.advance(SAMPLE_EVERY, j);
        record(&mut trace, &wire);
    }
    // Early growth only.
    let mut t = Seconds::ZERO;
    while t < growth_time {
        wire.advance(SAMPLE_EVERY, j);
        t += SAMPLE_EVERY;
        record(&mut trace, &wire);
    }
    let delta_r_at_recovery_start = wire.delta_resistance().value();

    let mut min_dr = delta_r_at_recovery_start;
    let mut t = Seconds::ZERO;
    while t < reverse_time {
        wire.advance(SAMPLE_EVERY, -j);
        t += SAMPLE_EVERY;
        min_dr = min_dr.min(wire.delta_resistance().value());
        record(&mut trace, &wire);
    }
    let reverse_em =
        wire.has_void_at(WireEnd::Anode) || wire.end_stress(WireEnd::Anode).value() > 0.0;
    EarlyRecoveryOutcome {
        trace,
        delta_r_at_recovery_start,
        delta_r_after_recovery: min_dr,
        reverse_em_observed: reverse_em,
    }
}

/// Outcome of the Fig. 7-style periodic-recovery experiment.
#[derive(Debug, Clone)]
pub struct PeriodicRecoveryOutcome {
    /// Resistance trace under the periodic stress/recovery schedule.
    pub scheduled: TimeSeries,
    /// Resistance trace under continuous stress (the Fig. 5 baseline).
    pub continuous: TimeSeries,
    /// Nucleation time under the schedule.
    pub scheduled_nucleation: Option<Seconds>,
    /// Nucleation time under continuous stress.
    pub continuous_nucleation: Option<Seconds>,
    /// Time to hard failure under the schedule (`None` = survived the run).
    pub scheduled_ttf: Option<Seconds>,
    /// Time to hard failure under continuous stress.
    pub continuous_ttf: Option<Seconds>,
}

impl PeriodicRecoveryOutcome {
    /// The nucleation-delay factor achieved by the schedule.
    pub fn nucleation_delay_factor(&self) -> Option<f64> {
        match (self.scheduled_nucleation, self.continuous_nucleation) {
            (Some(s), Some(c)) if c.value() > 0.0 => Some(s / c),
            _ => None,
        }
    }

    /// The TTF-extension factor achieved by the schedule.
    pub fn ttf_extension_factor(&self) -> Option<f64> {
        match (self.scheduled_ttf, self.continuous_ttf) {
            (Some(s), Some(c)) if c.value() > 0.0 => Some(s / c),
            _ => None,
        }
    }
}

/// Runs the Fig. 7 experiment: cycles of `stress_interval` forward current
/// and `recovery_interval` reverse current **during the nucleation phase**
/// (the paper schedules the short recovery intervals "in the early phase of
/// EM stress evolution", i.e. before voids nucleate), after which stress
/// runs continuously to failure — against a continuous-stress control. Both
/// run until hard failure or `horizon`.
pub fn periodic_recovery_experiment(
    wire: EmWire,
    j: CurrentDensity,
    stress_interval: Seconds,
    recovery_interval: Seconds,
    horizon: Seconds,
) -> PeriodicRecoveryOutcome {
    let mut scheduled_wire = wire.clone();
    let mut continuous_wire = wire;
    let mut scheduled = TimeSeries::new("R (ohm), periodic scheduled recovery");
    let mut continuous = TimeSeries::new("R (ohm), continuous accelerated stress");
    let mut scheduled_nucleation = None;
    let mut continuous_nucleation = None;
    let mut scheduled_ttf = None;
    let mut continuous_ttf = None;

    record(&mut scheduled, &scheduled_wire);
    record(&mut continuous, &continuous_wire);
    let mut t = Seconds::ZERO;
    let mut in_stress = true;
    let mut phase_left = stress_interval;
    while t < horizon && (scheduled_ttf.is_none() || continuous_ttf.is_none()) {
        let step = SAMPLE_EVERY.min(phase_left);
        // Once the void has nucleated the scheduled branch reverts to
        // continuous stress (the paper's Fig. 7 protocol).
        let j_sched = if in_stress || scheduled_wire.has_void() {
            j
        } else {
            -j
        };
        if scheduled_ttf.is_none() {
            scheduled_wire.advance(step, j_sched);
        }
        if continuous_ttf.is_none() {
            continuous_wire.advance(step, j);
        }
        t += step;
        phase_left -= step;
        if phase_left.value() <= 1e-9 {
            in_stress = !in_stress;
            phase_left = if in_stress {
                stress_interval
            } else {
                recovery_interval
            };
        }

        if scheduled_nucleation.is_none() && scheduled_wire.has_void() {
            scheduled_nucleation = Some(t);
        }
        if continuous_nucleation.is_none() && continuous_wire.has_void() {
            continuous_nucleation = Some(t);
        }
        if scheduled_ttf.is_none() {
            if scheduled_wire.is_failed() {
                scheduled_ttf = Some(t);
            } else {
                record(&mut scheduled, &scheduled_wire);
            }
        }
        if continuous_ttf.is_none() {
            if continuous_wire.is_failed() {
                continuous_ttf = Some(t);
            } else {
                record(&mut continuous, &continuous_wire);
            }
        }
    }

    PeriodicRecoveryOutcome {
        scheduled,
        continuous,
        scheduled_nucleation,
        continuous_nucleation,
        scheduled_ttf,
        continuous_ttf,
    }
}

/// One cell of the paper's Fig. 2(b) EM recovery-condition matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmConditionOutcome {
    /// Condition number in the paper's Fig. 2(b) order (1–4).
    pub condition_no: usize,
    /// Whether the current was reversed (vs simply removed).
    pub reverse_current: bool,
    /// Recovery temperature.
    pub temperature: dh_units::Kelvin,
    /// Fraction of the stress-induced ΔR recovered in the window.
    pub recovered_fraction: f64,
}

/// Reproduces the paper's Fig. 2(b) matrix for EM: after a fixed stress,
/// recovery proceeds for `recovery_time` under each of the four conditions
/// — passive/active current × room/oven temperature. Mirrors the BTI
/// Table I structure: temperature *accelerates* (Arrhenius diffusivity)
/// and current reversal *activates*.
pub fn condition_matrix(
    j: CurrentDensity,
    stress_time: Seconds,
    recovery_time: Seconds,
) -> [EmConditionOutcome; 4] {
    use dh_units::Celsius;
    let mut stressed = EmWire::paper_wire();
    stressed.advance(stress_time, j);
    let dr0 = stressed.delta_resistance().value();

    let room = Celsius::new(20.0).to_kelvin();
    let oven = Celsius::new(230.0).to_kelvin();
    let conditions = [
        (1, false, room),
        (2, true, room),
        (3, false, oven),
        (4, true, oven),
    ];
    conditions.map(|(condition_no, reverse_current, temperature)| {
        let mut wire = stressed.clone();
        wire.set_temperature(temperature);
        let j_rec = if reverse_current {
            -j
        } else {
            CurrentDensity::ZERO
        };
        wire.advance(recovery_time, j_rec);
        wire.set_temperature(oven);
        let recovered = if dr0 > 0.0 {
            ((dr0 - wire.delta_resistance().value()) / dr0).clamp(-1.0, 1.0)
        } else {
            0.0
        };
        EmConditionOutcome {
            condition_no,
            reverse_current,
            temperature,
            recovered_fraction: recovered,
        }
    })
}

fn record(series: &mut TimeSeries, wire: &EmWire) {
    let r = wire.resistance().value();
    if r.is_finite() {
        series.push(wire.time(), r);
    }
}

fn recovered_fraction(peak: f64, now: f64) -> f64 {
    if peak <= 0.0 {
        return 0.0;
    }
    ((peak - now) / peak).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j() -> CurrentDensity {
        CurrentDensity::from_ma_per_cm2(7.96)
    }

    #[test]
    fn fig5_experiment_shows_activation_and_permanence() {
        let out = stress_recovery_experiment(
            EmWire::paper_wire(),
            j(),
            Seconds::from_minutes(550.0),
            Seconds::from_minutes(110.0),
        );
        assert!(out.nucleation_time.is_some());
        assert!(out.delta_r_peak > 0.8);
        assert!(
            out.active_recovered_fraction > 0.7,
            "active recovered {}",
            out.active_recovered_fraction
        );
        assert!(
            out.active_recovered_fraction > 3.0 * out.passive_recovered_fraction.max(0.01),
            "active {} vs passive {}",
            out.active_recovered_fraction,
            out.passive_recovered_fraction
        );
        assert!(out.permanent_delta_r > 0.0);
        assert!(out.active.len() > 100);
    }

    #[test]
    fn fig6_early_recovery_is_full_and_reverse_em_appears() {
        let out = early_recovery_experiment(
            EmWire::paper_wire(),
            j(),
            Seconds::from_minutes(40.0),
            Seconds::from_minutes(600.0),
        );
        assert!(out.delta_r_at_recovery_start > 0.0);
        assert!(
            out.delta_r_after_recovery < 0.1 * out.delta_r_at_recovery_start,
            "residual {} of {}",
            out.delta_r_after_recovery,
            out.delta_r_at_recovery_start
        );
        assert!(
            out.reverse_em_observed,
            "sustained reverse current must re-stress the wire"
        );
    }

    #[test]
    fn fig2b_condition_matrix_orders_like_the_bti_table() {
        // The EM analogue of Table I: both knobs help, together they win.
        let outs = condition_matrix(
            j(),
            Seconds::from_minutes(500.0),
            Seconds::from_minutes(100.0),
        );
        let r: Vec<f64> = outs.iter().map(|o| o.recovered_fraction).collect();
        // Room temperature freezes diffusion: both room conditions ≈ 0.
        assert!(r[0].abs() < 0.02, "passive room {r:?}");
        assert!(r[1].abs() < 0.02, "active room {r:?}");
        // At temperature, passive is slow, active is deep.
        assert!(r[3] > 0.5, "active hot {r:?}");
        assert!(r[3] > 5.0 * r[2].max(0.01), "activation dominates {r:?}");
        assert_eq!(outs[3].condition_no, 4);
        assert!(outs[3].reverse_current);
    }

    #[test]
    fn fig7_periodic_recovery_delays_nucleation_and_extends_ttf() {
        let out = periodic_recovery_experiment(
            EmWire::paper_wire(),
            j(),
            Seconds::from_minutes(60.0),
            Seconds::from_minutes(20.0),
            Seconds::from_hours(60.0),
        );
        let delay = out.nucleation_delay_factor().expect("both must nucleate");
        assert!(delay > 1.8, "nucleation delay factor {delay}");
        let ttf = out
            .ttf_extension_factor()
            .expect("both must fail within horizon");
        assert!(ttf > 1.4, "TTF extension factor {ttf}");
        // Paper: "almost 3× slower".
        assert!(delay < 8.0, "delay factor suspiciously large: {delay}");
    }
}
