//! Electromigration material parameters for damascene copper.
//!
//! The transport parameters follow the physics-based EM models the paper
//! cites (Korhonen-type stress evolution; Huang 2016, Sukharev 2015): the
//! atomic diffusivity is Arrhenius in temperature, the electron-wind drive
//! is `G = Z* e ρ(T) j / Ω`, and the stress diffusivity is
//! `κ = D_a B Ω / (k_B T)`.
//!
//! `d0_m2_per_s` and `critical_stress` are *calibration* parameters chosen
//! so that the paper wire nucleates a void after ≈200 minutes at 230 °C and
//! 7.96 MA/cm², matching Fig. 5; `recovery_mobility_boost` captures the
//! measured growth/heal rate asymmetry (>75 % of the damage heals within 1/5
//! of the stress time) that the paper attributes to activated back-flow —
//! physically, void refill proceeds along the fast void-surface diffusion
//! path while growth is limited by interface diffusion. See DESIGN.md.

use dh_units::constants::{
    BOLTZMANN_J_PER_K, COPPER_ATOMIC_VOLUME_M3, COPPER_EFFECTIVE_CHARGE, COPPER_EM_ACTIVATION_EV,
    DAMASCENE_EFFECTIVE_MODULUS_PA, ELEMENTARY_CHARGE_C,
};
use dh_units::error::ensure_positive;
use dh_units::{arrhenius, CurrentDensity, Kelvin, Pascals};

use crate::error::EmError;
use crate::wire::WireGeometry;

/// Material/transport parameters of an EM-susceptible metal line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmMaterial {
    /// Diffusivity prefactor D₀, m²/s.
    pub d0_m2_per_s: f64,
    /// Activation energy of the dominant diffusion path, eV.
    pub activation_ev: f64,
    /// Effective charge number |Z*|.
    pub effective_charge: f64,
    /// Atomic volume Ω, m³.
    pub atomic_volume_m3: f64,
    /// Effective modulus B coupling atom exchange to stress, Pa.
    pub effective_modulus_pa: f64,
    /// Critical (tensile) stress for void nucleation.
    pub critical_stress: Pascals,
    /// Resistance increase per metre of void length, Ω/m — set by the
    /// refractory liner that must carry the current across the void.
    pub void_resistance_per_m: f64,
    /// Void length at which the line is considered broken (hard failure).
    pub break_length_m: f64,
    /// Mobility multiplier applied to void *healing* flux (≥ 1).
    pub recovery_mobility_boost: f64,
    /// Pinning time constant: mobile void volume consolidates (becomes
    /// unrecoverable) with this time constant — the EM permanent component.
    pub pinning_tau_s: f64,
}

impl EmMaterial {
    /// Damascene copper calibrated to the paper's measurements.
    pub fn damascene_copper() -> Self {
        Self {
            d0_m2_per_s: 6.6e-8,
            activation_ev: COPPER_EM_ACTIVATION_EV,
            effective_charge: COPPER_EFFECTIVE_CHARGE,
            atomic_volume_m3: COPPER_ATOMIC_VOLUME_M3,
            effective_modulus_pa: DAMASCENE_EFFECTIVE_MODULUS_PA,
            critical_stress: Pascals::from_mpa(400.0),
            // ≈1.7 Ω of resistance rise for ≈330 nm of void growth (Fig. 5):
            // a Ta-liner cross-section of ~0.37 µm² on the paper wire.
            void_resistance_per_m: 5.2e6,
            // Fig. 5 marks "continuous stress after this point will
            // potentially cause metal break" near ΔR ≈ 1.8 Ω; the hard
            // break happens shortly after, at ≈350 nm of void.
            break_length_m: 350.0e-9,
            recovery_mobility_boost: 4.0,
            // Calibrated so the Fig. 5 protocol (void ~6 h old at recovery)
            // leaves a ~20 % pinned residue while the Fig. 6 early-recovery
            // protocol heals essentially completely.
            pinning_tau_s: 16.0 * 3600.0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidMaterial`] when any parameter is
    /// non-physical (non-positive, or a boost below 1).
    pub fn validated(self) -> Result<Self, EmError> {
        let check = |what: &'static str, v: f64| {
            ensure_positive(what, v).map_err(|e| EmError::InvalidMaterial(e.to_string()))
        };
        check("D0", self.d0_m2_per_s)?;
        check("activation energy", self.activation_ev)?;
        check("effective charge", self.effective_charge)?;
        check("atomic volume", self.atomic_volume_m3)?;
        check("effective modulus", self.effective_modulus_pa)?;
        check("critical stress", self.critical_stress.value())?;
        check("void resistance per metre", self.void_resistance_per_m)?;
        check("break length", self.break_length_m)?;
        check("pinning time constant", self.pinning_tau_s)?;
        if self.recovery_mobility_boost < 1.0 {
            return Err(EmError::InvalidMaterial(format!(
                "recovery mobility boost must be >= 1, got {}",
                self.recovery_mobility_boost
            )));
        }
        Ok(self)
    }

    /// Atomic diffusivity D_a(T), m²/s.
    pub fn diffusivity(&self, t: Kelvin) -> f64 {
        self.d0_m2_per_s * arrhenius::rate_factor(self.activation_ev, t)
    }

    /// Stress diffusivity κ(T) = D_a B Ω / (k_B T), m²/s.
    pub fn kappa(&self, t: Kelvin) -> f64 {
        self.diffusivity(t) * self.effective_modulus_pa * self.atomic_volume_m3
            / (BOLTZMANN_J_PER_K * t.value())
    }

    /// Electron-wind stress drive G = Z* e ρ(T) j / Ω, Pa/m (signed with j).
    pub fn wind_drive(&self, wire: &WireGeometry, j: CurrentDensity, t: Kelvin) -> f64 {
        self.effective_charge * ELEMENTARY_CHARGE_C * wire.resistivity_at(t) * j.value()
            / self.atomic_volume_m3
    }

    /// Atom drift mobility factor D_a/(k_B T), used for void volume flux.
    pub fn drift_mobility(&self, t: Kelvin) -> f64 {
        self.diffusivity(t) / (BOLTZMANN_J_PER_K * t.value())
    }

    /// The Blech-type steady-state maximum stress `G·L/2` for a wire; if it
    /// is below the critical stress the line is immortal at this current.
    pub fn steady_state_peak(&self, wire: &WireGeometry, j: CurrentDensity, t: Kelvin) -> Pascals {
        Pascals::new(self.wind_drive(wire, j, t).abs() * wire.length_m / 2.0)
    }
}

impl Default for EmMaterial {
    fn default() -> Self {
        Self::damascene_copper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_units::Celsius;

    fn oven() -> Kelvin {
        Celsius::new(230.0).to_kelvin()
    }

    #[test]
    fn paper_stress_is_far_above_blech_immortality() {
        // The accelerated test is meant to kill the wire: G·L/2 ≫ σ_crit.
        let m = EmMaterial::damascene_copper();
        let w = WireGeometry::paper();
        let peak = m.steady_state_peak(&w, CurrentDensity::from_ma_per_cm2(7.96), oven());
        assert!(
            peak > m.critical_stress * 10.0,
            "peak = {} MPa",
            peak.as_mpa()
        );
    }

    #[test]
    fn wind_drive_magnitude_matches_hand_calculation() {
        let m = EmMaterial::damascene_copper();
        let w = WireGeometry::paper();
        let g = m.wind_drive(&w, CurrentDensity::from_ma_per_cm2(7.96), oven());
        // Z*·e·ρ(230 °C)·j/Ω ≈ 3.7e13 Pa/m.
        assert!(g > 3.0e13 && g < 4.5e13, "G = {g:.3e}");
    }

    #[test]
    fn wind_drive_sign_follows_current() {
        let m = EmMaterial::damascene_copper();
        let w = WireGeometry::paper();
        let fwd = m.wind_drive(&w, CurrentDensity::from_ma_per_cm2(7.96), oven());
        let rev = m.wind_drive(&w, CurrentDensity::from_ma_per_cm2(-7.96), oven());
        assert!((fwd + rev).abs() < 1e-3 * fwd.abs());
        assert!(fwd > 0.0 && rev < 0.0);
    }

    #[test]
    fn kappa_accelerates_with_temperature() {
        let m = EmMaterial::damascene_copper();
        let hot = m.kappa(oven());
        let warm = m.kappa(Celsius::new(105.0).to_kelvin());
        assert!(
            hot > 100.0 * warm,
            "kappa 230C {hot:.3e} vs 105C {warm:.3e}"
        );
        // Calibrated magnitude: ~7e-15 m²/s at the oven temperature.
        assert!(hot > 2e-15 && hot < 3e-14, "kappa = {hot:.3e}");
    }

    #[test]
    fn validation_rejects_non_physical_parameters() {
        let mut m = EmMaterial::damascene_copper();
        m.recovery_mobility_boost = 0.5;
        assert!(m.validated().is_err());
        let mut m = EmMaterial::damascene_copper();
        m.d0_m2_per_s = -1.0;
        assert!(m.validated().is_err());
        assert!(EmMaterial::damascene_copper().validated().is_ok());
    }
}
