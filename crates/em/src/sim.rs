//! The EM wire simulator: Korhonen stress evolution coupled to void
//! nucleation, growth, healing, and pinning.
//!
//! # Model
//!
//! Hydrostatic stress σ(x, t) in the line follows the Korhonen equation in
//! conservative form,
//!
//! ```text
//! ∂σ/∂t = −∂F/∂x,       F = −κ(T) · (∂σ/∂x + G)
//! ```
//!
//! with `G = Z* e ρ(T) j / Ω` the electron-wind drive (signed with the
//! current) and `κ = D_a B Ω / (k_B T)`. Both wire ends are blocked
//! (dual-damascene barriers): `F = 0` until a void exists.
//!
//! For forward current (`j > 0`) tension builds at the *cathode* end
//! (`x = 0`); a void nucleates there when the tension reaches the critical
//! stress. A voided end switches to a free-surface boundary (`σ = 0`) and
//! the void exchanges length with the line at the boundary drift velocity
//!
//! ```text
//! v = (D_a / k_B T) · Ω · (G + ∂σ/∂x)|boundary
//! ```
//!
//! Healing (`v < 0` at the cathode) is boosted by the material's
//! `recovery_mobility_boost`, reproducing the measured asymmetry (>75 % of
//! the damage heals within 1/5 of the stress time, Fig. 5). Mobile void
//! volume *pins* (consolidates) with time constant `pinning_tau_s`; pinned
//! volume contributes resistance but cannot heal — the EM permanent
//! component. Reverse current applied past full healing drives tension at
//! the opposite end and can nucleate a *reverse* void (Fig. 6's
//! "reverse-current-induced EM").

use core::fmt;

use dh_units::{Celsius, CurrentDensity, Kelvin, Ohms, Pascals, Seconds};

use crate::error::EmError;
use crate::material::EmMaterial;
use crate::mesh::Mesh;
use crate::stencil;
use crate::wire::WireGeometry;

/// The two ends of the wire. Names refer to the role under *forward*
/// current: electrons enter at the cathode (`x = 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireEnd {
    /// The `x = 0` end (tensile under forward current).
    Cathode,
    /// The `x = L` end (tensile under reverse current).
    Anode,
}

impl WireEnd {
    /// Both ends, cathode first.
    pub const BOTH: [Self; 2] = [Self::Cathode, Self::Anode];
}

impl fmt::Display for WireEnd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Cathode => write!(f, "cathode"),
            Self::Anode => write!(f, "anode"),
        }
    }
}

/// Void state at one wire end, in metres of equivalent void length.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct VoidState {
    mobile_m: f64,
    pinned_m: f64,
}

impl VoidState {
    fn total_m(&self) -> f64 {
        self.mobile_m + self.pinned_m
    }

    fn exists(&self) -> bool {
        self.total_m() > 0.0
    }
}

/// Default node count for the paper wire (resolves the ~10 µm diffusion
/// length at the ends).
const DEFAULT_NODES: usize = 181;
/// Default end clustering of the mesh.
const DEFAULT_CLUSTERING: f64 = 0.95;
/// Explicit-integration safety factor on the stability limit.
const STABILITY_SAFETY: f64 = 0.4;
/// Seed length of a freshly nucleated void, metres.
const VOID_SEED_M: f64 = 1.0e-10;

/// A simulated EM test wire.
#[derive(Debug, Clone, PartialEq)]
pub struct EmWire {
    geometry: WireGeometry,
    material: EmMaterial,
    mesh: Mesh,
    sigma: Vec<f64>,
    temperature: Kelvin,
    voids: [VoidState; 2],
    time: Seconds,
    failed: bool,
}

impl EmWire {
    /// Builds a wire simulator.
    ///
    /// # Errors
    ///
    /// Returns [`EmError`] if the geometry, material, or mesh parameters are
    /// invalid.
    pub fn new(
        geometry: WireGeometry,
        material: EmMaterial,
        temperature: Kelvin,
        nodes: usize,
    ) -> Result<Self, EmError> {
        Self::with_clustering(geometry, material, temperature, nodes, DEFAULT_CLUSTERING)
    }

    /// Like [`EmWire::new`] with explicit mesh end-clustering. Millimetre
    /// test wires want strong clustering (the default 0.95); short local
    /// segments want mild clustering so the explicit stability limit stays
    /// practical.
    ///
    /// # Errors
    ///
    /// As for [`EmWire::new`].
    pub fn with_clustering(
        geometry: WireGeometry,
        material: EmMaterial,
        temperature: Kelvin,
        nodes: usize,
        clustering: f64,
    ) -> Result<Self, EmError> {
        let geometry = geometry.validated()?;
        let material = material.validated()?;
        let mesh = Mesh::end_refined(nodes, geometry.length_m, clustering)?;
        temperature.validated()?;
        Ok(Self {
            geometry,
            material,
            mesh,
            sigma: vec![0.0; nodes],
            temperature,
            voids: [VoidState::default(); 2],
            time: Seconds::ZERO,
            failed: false,
        })
    }

    /// The paper's Fig. 3 wire in damascene copper at the 230 °C oven
    /// temperature used in Figs. 5–7.
    pub fn paper_wire() -> Self {
        Self::new(
            WireGeometry::paper(),
            EmMaterial::damascene_copper(),
            Celsius::new(230.0).to_kelvin(),
            DEFAULT_NODES,
        )
        .expect("paper wire parameters are valid by construction")
    }

    /// The wire geometry.
    pub fn geometry(&self) -> &WireGeometry {
        &self.geometry
    }

    /// The material parameters.
    pub fn material(&self) -> &EmMaterial {
        &self.material
    }

    /// Current simulation time.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// Current wire temperature.
    pub fn temperature(&self) -> Kelvin {
        self.temperature
    }

    /// Changes the wire temperature (e.g. oven programs).
    pub fn set_temperature(&mut self, t: Kelvin) {
        self.temperature = t;
    }

    /// Whether the wire has failed open (void reached the break length).
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Whether any void exists at either end.
    pub fn has_void(&self) -> bool {
        self.voids.iter().any(VoidState::exists)
    }

    /// Whether a void exists at the given end.
    pub fn has_void_at(&self, end: WireEnd) -> bool {
        self.void(end).exists()
    }

    /// Total void length at an end (mobile + pinned), metres.
    pub fn void_length_m(&self, end: WireEnd) -> f64 {
        self.void(end).total_m()
    }

    /// Pinned (unrecoverable) void length at an end, metres.
    pub fn pinned_length_m(&self, end: WireEnd) -> f64 {
        self.void(end).pinned_m
    }

    /// The boundary stress at an end.
    pub fn end_stress(&self, end: WireEnd) -> Pascals {
        match end {
            WireEnd::Cathode => Pascals::new(self.sigma[0]),
            WireEnd::Anode => Pascals::new(*self.sigma.last().expect("non-empty mesh")),
        }
    }

    /// The full stress profile as `(position m, stress Pa)` pairs.
    pub fn stress_profile(&self) -> Vec<(f64, f64)> {
        self.mesh
            .nodes()
            .iter()
            .copied()
            .zip(self.sigma.iter().copied())
            .collect()
    }

    /// Electrical resistance at the current temperature, including void
    /// contributions. Returns `Ohms::new(f64::INFINITY)` once failed open.
    pub fn resistance(&self) -> Ohms {
        if self.failed {
            return Ohms::new(f64::INFINITY);
        }
        let dr: f64 = self
            .voids
            .iter()
            .map(|v| v.total_m() * self.material.void_resistance_per_m)
            .sum();
        self.geometry.resistance_at(self.temperature) + Ohms::new(dr)
    }

    /// The resistance increase over the fresh wire at this temperature.
    pub fn delta_resistance(&self) -> Ohms {
        if self.failed {
            return Ohms::new(f64::INFINITY);
        }
        self.resistance() - self.geometry.resistance_at(self.temperature)
    }

    fn void(&self, end: WireEnd) -> &VoidState {
        match end {
            WireEnd::Cathode => &self.voids[0],
            WireEnd::Anode => &self.voids[1],
        }
    }

    /// Advances the simulation by `dt` under current density `j` (signed:
    /// positive is the forward stress direction, negative is the paper's
    /// *EM active recovery* direction; zero is passive recovery).
    ///
    /// The call internally sub-steps at the explicit stability limit. After
    /// hard failure the wire state is frozen and calls are no-ops.
    pub fn advance(&mut self, dt: Seconds, j: CurrentDensity) {
        let t = self.temperature;
        self.advance_with_profile(dt, j, |_| t);
    }

    /// Like [`EmWire::advance`], but with a spatial temperature profile
    /// `temp_at(x_m)` along the wire — the paper's Fig. 12(a) situation
    /// where neighbouring logic heats one end of a grid segment. Both the
    /// stress diffusivity κ and the wind drive G become fields; the hot
    /// regions both stress and heal faster. (Thermomigration — atom flux
    /// driven by the temperature gradient itself — is outside the model;
    /// see DESIGN.md.)
    pub fn advance_with_profile(
        &mut self,
        dt: Seconds,
        j: CurrentDensity,
        temp_at: impl Fn(f64) -> Kelvin,
    ) {
        if !(dt.value() > 0.0) || self.failed || !j.value().is_finite() {
            return;
        }
        let n = self.sigma.len();
        // Per-face transport coefficients from the midpoint temperature.
        let mut kappa = vec![0.0; n - 1];
        let mut g = vec![0.0; n - 1];
        let mut kappa_max: f64 = 0.0;
        for i in 0..n - 1 {
            let x_mid = 0.5 * (self.mesh.nodes()[i] + self.mesh.nodes()[i + 1]);
            let t = temp_at(x_mid);
            kappa[i] = self.material.kappa(t);
            g[i] = self.material.wind_drive(&self.geometry, j, t);
            kappa_max = kappa_max.max(kappa[i]);
        }
        let t_cathode = temp_at(0.0);
        let t_anode = temp_at(self.geometry.length_m);
        let drift = (
            self.material.drift_mobility(t_cathode),
            self.material.drift_mobility(t_anode),
        );
        let omega = self.material.atomic_volume_m3;
        let dx_min = self.mesh.min_spacing();
        let dt_stable = STABILITY_SAFETY * dx_min * dx_min / (2.0 * kappa_max.max(1e-300));

        // Everything loop-invariant is hoisted out of the substep: the
        // flux scratch buffer, the *reciprocal* face spacings and
        // control-volume widths (the vectorized stencil multiplies instead
        // of dividing — `vdivpd` would dominate it), and the pinning
        // factor (every substep but the final partial one uses dt_stable).
        // The substep arithmetic is shared with `advance_reference`, so
        // the two stay bit-identical.
        let mut flux = vec![0.0; n - 1];
        let inv_face_dx: Vec<f64> = (0..n - 1)
            .map(|i| 1.0 / self.mesh.face_spacing(i))
            .collect();
        let inv_widths: Vec<f64> = self.mesh.widths().iter().map(|&w| 1.0 / w).collect();
        let tau_pin = self.material.pinning_tau_s;
        let pin_stable = 1.0 - (-dt_stable / tau_pin).exp();

        let mut remaining = dt.value();
        while remaining > 0.0 && !self.failed {
            let step = remaining.min(dt_stable);
            let pin_factor = if step == dt_stable {
                pin_stable
            } else {
                1.0 - (-step / tau_pin).exp()
            };
            self.substep(
                step,
                &kappa,
                &g,
                drift,
                omega,
                &inv_face_dx,
                &inv_widths,
                &mut flux,
                pin_factor,
            );
            remaining -= step;
        }
    }

    /// The pre-optimization `advance` (one allocation-heavy substep loop):
    /// kept as the equivalence oracle for the hoisted fast path — it runs
    /// the same vectorized substep, so `advance` must match it bit for
    /// bit. Not part of the API.
    #[doc(hidden)]
    pub fn advance_reference(&mut self, dt: Seconds, j: CurrentDensity) {
        if !(dt.value() > 0.0) || self.failed || !j.value().is_finite() {
            return;
        }
        let n = self.sigma.len();
        let mut kappa = vec![0.0; n - 1];
        let mut g = vec![0.0; n - 1];
        let mut kappa_max: f64 = 0.0;
        for i in 0..n - 1 {
            kappa[i] = self.material.kappa(self.temperature);
            g[i] = self
                .material
                .wind_drive(&self.geometry, j, self.temperature);
            kappa_max = kappa_max.max(kappa[i]);
        }
        let mobility = self.material.drift_mobility(self.temperature);
        let drift = (mobility, mobility);
        let omega = self.material.atomic_volume_m3;
        let dx_min = self.mesh.min_spacing();
        let dt_stable = STABILITY_SAFETY * dx_min * dx_min / (2.0 * kappa_max.max(1e-300));

        let mut remaining = dt.value();
        while remaining > 0.0 && !self.failed {
            let step = remaining.min(dt_stable);
            // Per-substep allocations and transcendentals, as the original
            // hot loop had them.
            let mut flux = vec![0.0; n - 1];
            let inv_face_dx: Vec<f64> = (0..n - 1)
                .map(|i| 1.0 / self.mesh.face_spacing(i))
                .collect();
            let inv_widths: Vec<f64> = self.mesh.widths().iter().map(|&w| 1.0 / w).collect();
            let pin_factor = 1.0 - (-step / self.material.pinning_tau_s).exp();
            self.substep(
                step,
                &kappa,
                &g,
                drift,
                omega,
                &inv_face_dx,
                &inv_widths,
                &mut flux,
                pin_factor,
            );
            remaining -= step;
        }
    }

    /// The PR 4 `advance` (hoisted loop invariants, division-based scalar
    /// stencil): kept as the measured baseline for `perf_snapshot`'s EM
    /// stencil row. Division and multiplication-by-reciprocal differ by an
    /// ulp per face, so this baseline is *numerically* (not bitwise)
    /// equivalent to `advance`; a test pins the tolerance. Not part of the
    /// API.
    #[doc(hidden)]
    pub fn advance_pr4(&mut self, dt: Seconds, j: CurrentDensity) {
        if !(dt.value() > 0.0) || self.failed || !j.value().is_finite() {
            return;
        }
        let n = self.sigma.len();
        let mut kappa = vec![0.0; n - 1];
        let mut g = vec![0.0; n - 1];
        let mut kappa_max: f64 = 0.0;
        for i in 0..n - 1 {
            kappa[i] = self.material.kappa(self.temperature);
            g[i] = self
                .material
                .wind_drive(&self.geometry, j, self.temperature);
            kappa_max = kappa_max.max(kappa[i]);
        }
        let mobility = self.material.drift_mobility(self.temperature);
        let drift = (mobility, mobility);
        let omega = self.material.atomic_volume_m3;
        let dx_min = self.mesh.min_spacing();
        let dt_stable = STABILITY_SAFETY * dx_min * dx_min / (2.0 * kappa_max.max(1e-300));

        let mut flux = vec![0.0; n - 1];
        let face_dx: Vec<f64> = (0..n - 1).map(|i| self.mesh.face_spacing(i)).collect();
        let tau_pin = self.material.pinning_tau_s;
        let pin_stable = 1.0 - (-dt_stable / tau_pin).exp();

        let mut remaining = dt.value();
        while remaining > 0.0 && !self.failed {
            let step = remaining.min(dt_stable);
            let pin_factor = if step == dt_stable {
                pin_stable
            } else {
                1.0 - (-step / tau_pin).exp()
            };
            self.substep_pr4(
                step, &kappa, &g, drift, omega, &face_dx, &mut flux, pin_factor,
            );
            remaining -= step;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn substep(
        &mut self,
        dt: f64,
        kappa: &[f64],
        g: &[f64],
        drift: (f64, f64),
        omega: f64,
        inv_face_dx: &[f64],
        inv_widths: &[f64],
        flux: &mut [f64],
        pin_factor: f64,
    ) {
        let n = self.sigma.len();
        let sigma_crit = self.material.critical_stress.value();

        // Face fluxes F[i] between nodes i and i+1: F = −κ(∂σ/∂x + G) —
        // the vectorized stencil kernel.
        stencil::face_fluxes(flux, &self.sigma, kappa, g, inv_face_dx);

        // Void length rates at each end (m/s, positive = growing).
        let cathode_grad = (self.sigma[1] - self.sigma[0]) * inv_face_dx[0];
        let anode_grad = (self.sigma[n - 1] - self.sigma[n - 2]) * inv_face_dx[n - 2];
        let mut v_cathode = drift.0 * omega * (g[0] + cathode_grad);
        let mut v_anode = -drift.1 * omega * (g[n - 2] + anode_grad);
        if v_cathode < 0.0 {
            v_cathode *= self.material.recovery_mobility_boost;
        }
        if v_anode < 0.0 {
            v_anode *= self.material.recovery_mobility_boost;
        }

        // Interior update: σ' = −∂F/∂x over each control volume — the
        // vectorized stencil kernel.
        stencil::interior_update(&mut self.sigma, flux, inv_widths, dt);
        // Boundary nodes: blocked (zero boundary flux) without a void,
        // free surface (σ = 0) with one.
        if self.voids[0].exists() {
            self.sigma[0] = 0.0;
        } else {
            self.sigma[0] += -dt * flux[0] * inv_widths[0];
        }
        if self.voids[1].exists() {
            self.sigma[n - 1] = 0.0;
        } else {
            self.sigma[n - 1] += -dt * -flux[n - 2] * inv_widths[n - 1];
        }

        // Void volume exchange, pinning, nucleation, failure.
        for (idx, v_rate) in [(0, v_cathode), (1, v_anode)] {
            let void = &mut self.voids[idx];
            if void.exists() {
                void.mobile_m = (void.mobile_m + v_rate * dt).max(0.0);
                let pin = void.mobile_m * pin_factor;
                void.mobile_m -= pin;
                void.pinned_m += pin;
            }
        }
        if !self.voids[0].exists() && self.sigma[0] >= sigma_crit {
            self.voids[0].mobile_m = VOID_SEED_M;
            self.sigma[0] = 0.0;
        }
        if !self.voids[1].exists() && self.sigma[n - 1] >= sigma_crit {
            self.voids[1].mobile_m = VOID_SEED_M;
            self.sigma[n - 1] = 0.0;
        }
        if self
            .voids
            .iter()
            .any(|v| v.total_m() >= self.material.break_length_m)
        {
            self.failed = true;
        }

        self.time += Seconds::new(dt);
    }

    /// The PR 4 substep: scalar stencil with per-face divisions, exactly
    /// as it stood before the SIMD rework. Only [`EmWire::advance_pr4`]
    /// calls it.
    #[allow(clippy::too_many_arguments)]
    fn substep_pr4(
        &mut self,
        dt: f64,
        kappa: &[f64],
        g: &[f64],
        drift: (f64, f64),
        omega: f64,
        face_dx: &[f64],
        flux: &mut [f64],
        pin_factor: f64,
    ) {
        let n = self.sigma.len();
        let sigma_crit = self.material.critical_stress.value();

        // Face fluxes F[i] between nodes i and i+1: F = −κ(∂σ/∂x + G).
        for i in 0..n - 1 {
            flux[i] = -kappa[i] * ((self.sigma[i + 1] - self.sigma[i]) / face_dx[i] + g[i]);
        }

        // Void length rates at each end (m/s, positive = growing).
        let cathode_grad = (self.sigma[1] - self.sigma[0]) / face_dx[0];
        let anode_grad = (self.sigma[n - 1] - self.sigma[n - 2]) / face_dx[n - 2];
        let mut v_cathode = drift.0 * omega * (g[0] + cathode_grad);
        let mut v_anode = -drift.1 * omega * (g[n - 2] + anode_grad);
        if v_cathode < 0.0 {
            v_cathode *= self.material.recovery_mobility_boost;
        }
        if v_anode < 0.0 {
            v_anode *= self.material.recovery_mobility_boost;
        }

        // Interior update: σ' = −∂F/∂x over each control volume.
        let widths = self.mesh.widths();
        for i in 1..n - 1 {
            self.sigma[i] += -dt * (flux[i] - flux[i - 1]) / widths[i];
        }
        // Boundary nodes: blocked (zero boundary flux) without a void,
        // free surface (σ = 0) with one.
        if self.voids[0].exists() {
            self.sigma[0] = 0.0;
        } else {
            self.sigma[0] += -dt * flux[0] / widths[0];
        }
        if self.voids[1].exists() {
            self.sigma[n - 1] = 0.0;
        } else {
            self.sigma[n - 1] += -dt * -flux[n - 2] / widths[n - 1];
        }

        // Void volume exchange, pinning, nucleation, failure.
        for (idx, v_rate) in [(0, v_cathode), (1, v_anode)] {
            let void = &mut self.voids[idx];
            if void.exists() {
                void.mobile_m = (void.mobile_m + v_rate * dt).max(0.0);
                let pin = void.mobile_m * pin_factor;
                void.mobile_m -= pin;
                void.pinned_m += pin;
            }
        }
        if !self.voids[0].exists() && self.sigma[0] >= sigma_crit {
            self.voids[0].mobile_m = VOID_SEED_M;
            self.sigma[0] = 0.0;
        }
        if !self.voids[1].exists() && self.sigma[n - 1] >= sigma_crit {
            self.voids[1].mobile_m = VOID_SEED_M;
            self.sigma[n - 1] = 0.0;
        }
        if self
            .voids
            .iter()
            .any(|v| v.total_m() >= self.material.break_length_m)
        {
            self.failed = true;
        }

        self.time += Seconds::new(dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const J_STRESS: CurrentDensity = CurrentDensity::new(7.96e10);
    const J_RECOVER: CurrentDensity = CurrentDensity::new(-7.96e10);

    #[test]
    fn fresh_wire_is_unstressed_and_at_oven_resistance() {
        let w = EmWire::paper_wire();
        assert!(!w.has_void());
        assert!(!w.is_failed());
        assert_eq!(w.end_stress(WireEnd::Cathode), Pascals::ZERO);
        assert!((w.resistance().value() - 72.9).abs() < 0.3);
    }

    #[test]
    fn tension_builds_at_the_cathode_under_forward_current() {
        let mut w = EmWire::paper_wire();
        w.advance(Seconds::from_minutes(60.0), J_STRESS);
        let cathode = w.end_stress(WireEnd::Cathode).value();
        let anode = w.end_stress(WireEnd::Anode).value();
        assert!(cathode > 0.0, "cathode stress {cathode}");
        assert!(anode < 0.0, "anode stress {anode}");
        // Antisymmetric evolution.
        assert!((cathode + anode).abs() < 0.05 * cathode);
    }

    #[test]
    fn early_cathode_stress_matches_semi_infinite_solution() {
        // σ(0, t) = 2G√(κt/π) while the diffusion length ≪ wire length.
        let mut w = EmWire::paper_wire();
        let t = Seconds::from_minutes(30.0);
        w.advance(t, J_STRESS);
        let kappa = w.material().kappa(w.temperature());
        let g = w
            .material()
            .wind_drive(w.geometry(), J_STRESS, w.temperature());
        let analytic = 2.0 * g * (kappa * t.value() / std::f64::consts::PI).sqrt();
        let got = w.end_stress(WireEnd::Cathode).value();
        assert!(
            (got - analytic).abs() / analytic < 0.08,
            "got {got:.3e}, analytic {analytic:.3e}"
        );
    }

    #[test]
    fn nucleation_happens_near_200_minutes() {
        // Fig. 5 calibration: the void nucleation phase lasts ≈200 min at
        // 230 °C and 7.96 MA/cm².
        let mut w = EmWire::paper_wire();
        let mut nucleated_at = None;
        for minute in 1..=400 {
            w.advance(Seconds::from_minutes(1.0), J_STRESS);
            if w.has_void() {
                nucleated_at = Some(minute);
                break;
            }
        }
        let t = nucleated_at.expect("void must nucleate under accelerated stress");
        assert!((140..=260).contains(&t), "nucleated at {t} min");
    }

    #[test]
    fn resistance_is_flat_during_nucleation_then_rises() {
        let mut w = EmWire::paper_wire();
        let r0 = w.resistance().value();
        w.advance(Seconds::from_minutes(100.0), J_STRESS);
        assert!(
            (w.resistance().value() - r0).abs() < 1e-6,
            "flat during incubation"
        );
        w.advance(Seconds::from_minutes(400.0), J_STRESS);
        assert!(w.has_void());
        assert!(w.resistance().value() > r0 + 0.3, "rises during growth");
    }

    #[test]
    fn void_growth_rate_produces_paper_scale_resistance_rise() {
        // Fig. 5: ≈1.5–2 Ω of rise over ≈400 min of growth.
        let mut w = EmWire::paper_wire();
        w.advance(Seconds::from_minutes(550.0), J_STRESS);
        let dr = w.delta_resistance().value();
        assert!(dr > 0.8 && dr < 2.5, "ΔR after 550 min = {dr}");
    }

    #[test]
    fn active_recovery_heals_most_damage_within_a_fifth_of_stress_time() {
        // Fig. 5: >75 % of the EM wearout recovers within 1/5 of the stress
        // time under reverse current at temperature.
        let mut w = EmWire::paper_wire();
        w.advance(Seconds::from_minutes(550.0), J_STRESS);
        let dr0 = w.delta_resistance().value();
        w.advance(Seconds::from_minutes(110.0), J_RECOVER);
        let dr1 = w.delta_resistance().value();
        let recovered = (dr0 - dr1) / dr0;
        assert!(recovered > 0.7, "recovered {recovered:.2} of {dr0:.2} Ω");
        // ... but a permanent (pinned) component remains.
        assert!(dr1 > 0.02 * dr0, "permanent residue {dr1:.3}");
    }

    #[test]
    fn passive_recovery_is_much_slower_than_active() {
        let mut stressed = EmWire::paper_wire();
        stressed.advance(Seconds::from_minutes(550.0), J_STRESS);
        let dr0 = stressed.delta_resistance().value();

        let mut passive = stressed.clone();
        passive.advance(Seconds::from_minutes(110.0), CurrentDensity::ZERO);
        let passive_rec = (dr0 - passive.delta_resistance().value()) / dr0;

        let mut active = stressed;
        active.advance(Seconds::from_minutes(110.0), J_RECOVER);
        let active_rec = (dr0 - active.delta_resistance().value()) / dr0;

        assert!(
            active_rec > 3.0 * passive_rec.max(0.0) && active_rec > 0.7,
            "active {active_rec:.2} vs passive {passive_rec:.2}"
        );
    }

    #[test]
    fn early_recovery_is_nearly_full() {
        // Fig. 6: recovery scheduled in the early void-growth phase heals
        // the wire completely (pinning has not consolidated yet).
        let mut w = EmWire::paper_wire();
        // Stress just past nucleation.
        while !w.has_void() && w.time() < Seconds::from_minutes(400.0) {
            w.advance(Seconds::from_minutes(5.0), J_STRESS);
        }
        w.advance(Seconds::from_minutes(30.0), J_STRESS);
        let dr0 = w.delta_resistance().value();
        assert!(dr0 > 0.0);
        w.advance(Seconds::from_minutes(60.0), J_RECOVER);
        let dr1 = w.delta_resistance().value();
        assert!(
            dr1 < 0.1 * dr0,
            "early recovery residue {dr1:.4} of {dr0:.4}"
        );
    }

    #[test]
    fn over_recovery_causes_reverse_em_at_the_anode() {
        // Fig. 6: holding the reverse current past full recovery stresses
        // the line in the opposite direction.
        let mut w = EmWire::paper_wire();
        w.advance(Seconds::from_minutes(300.0), J_STRESS);
        // Long reverse stress: heal, then build tension at the anode.
        w.advance(Seconds::from_minutes(500.0), J_RECOVER);
        assert!(
            w.has_void_at(WireEnd::Anode) || w.end_stress(WireEnd::Anode).value() > 0.0,
            "anode should be tensile or voided under sustained reverse current"
        );
    }

    #[test]
    fn continuous_stress_eventually_breaks_the_wire() {
        let mut w = EmWire::paper_wire();
        w.advance(Seconds::from_hours(24.0), J_STRESS);
        assert!(w.is_failed());
        assert!(w.resistance().value().is_infinite());
        // Frozen after failure.
        let t = w.time();
        w.advance(Seconds::from_hours(1.0), J_STRESS);
        assert_eq!(w.time(), t);
    }

    #[test]
    #[ignore = "diagnostic probe for calibration; run with --ignored"]
    fn probe_trajectory() {
        let mut w = EmWire::paper_wire();
        for i in 0..60 {
            w.advance(Seconds::from_minutes(10.0), J_STRESS);
            println!(
                "t={:4} min  dR={:8.4}  void={:9.2} nm  pinned={:7.2} nm  sig0={:8.2} MPa failed={}",
                (i + 1) * 10,
                w.delta_resistance().value(),
                w.void_length_m(WireEnd::Cathode) * 1e9,
                w.pinned_length_m(WireEnd::Cathode) * 1e9,
                w.end_stress(WireEnd::Cathode).as_mpa(),
                w.is_failed(),
            );
            if w.is_failed() {
                break;
            }
        }
    }

    #[test]
    fn optimized_advance_is_bit_identical_to_reference() {
        // The hoisted fast path must replay the reference implementation's
        // exact arithmetic through stress, recovery, idle, and failure.
        let mut fast = EmWire::paper_wire();
        let mut reference = EmWire::paper_wire();
        let schedule = [
            (180.0, J_STRESS),
            (60.0, J_RECOVER),
            (45.0, CurrentDensity::ZERO),
            (400.0, J_STRESS),
        ];
        for (minutes, j) in schedule {
            fast.advance(Seconds::from_minutes(minutes), j);
            reference.advance_reference(Seconds::from_minutes(minutes), j);
            assert_eq!(fast, reference, "diverged after {minutes} min at {j:?}");
        }
        assert!(fast.has_void());
    }

    #[test]
    fn pr4_baseline_advance_stays_within_tolerance() {
        // `advance_pr4` keeps the pre-SIMD division arithmetic; dividing by
        // dx versus multiplying by 1/dx differs by at most an ulp per face,
        // so the trajectories are numerically (not bitwise) equivalent.
        let mut fast = EmWire::paper_wire();
        let mut baseline = EmWire::paper_wire();
        let schedule = [
            (180.0, J_STRESS),
            (60.0, J_RECOVER),
            (45.0, CurrentDensity::ZERO),
            (400.0, J_STRESS),
        ];
        for (minutes, j) in schedule {
            fast.advance(Seconds::from_minutes(minutes), j);
            baseline.advance_pr4(Seconds::from_minutes(minutes), j);
        }
        assert_eq!(fast.has_void(), baseline.has_void());
        for ((_, a), (_, b)) in fast
            .stress_profile()
            .into_iter()
            .zip(baseline.stress_profile())
        {
            let scale = a.abs().max(b.abs()).max(1.0);
            assert!((a - b).abs() / scale < 1e-9, "stress diverged: {a} vs {b}");
        }
        let (ra, rb) = (fast.resistance().value(), baseline.resistance().value());
        assert!(
            (ra - rb).abs() / rb < 1e-9,
            "resistance diverged: {ra} vs {rb}"
        );
    }

    #[test]
    fn uniform_profile_matches_plain_advance() {
        let mut plain = EmWire::paper_wire();
        plain.advance(Seconds::from_minutes(240.0), J_STRESS);
        let mut profiled = EmWire::paper_wire();
        let t = profiled.temperature();
        profiled.advance_with_profile(Seconds::from_minutes(240.0), J_STRESS, |_| t);
        assert_eq!(plain.stress_profile(), profiled.stress_profile());
        assert_eq!(plain.has_void(), profiled.has_void());
    }

    #[test]
    fn hot_cathode_nucleates_sooner_than_cold_cathode() {
        // Fig. 12(a)'s thermal coupling, applied to a wire: the end sitting
        // next to hot logic both stresses and heals faster. A gradient with
        // the hot side at the cathode accelerates nucleation relative to
        // the same gradient reversed.
        let length = WireGeometry::paper().length_m;
        let gradient = |hot_at_cathode: bool| {
            move |x: f64| {
                let frac = x / length;
                let c = if hot_at_cathode {
                    230.0 - 60.0 * frac
                } else {
                    170.0 + 60.0 * frac
                };
                Celsius::new(c).to_kelvin()
            }
        };
        let nucleation_time = |hot_at_cathode: bool| {
            let mut w = EmWire::paper_wire();
            let profile = gradient(hot_at_cathode);
            for minute in 1..=900 {
                w.advance_with_profile(Seconds::from_minutes(1.0), J_STRESS, profile);
                if w.has_void() {
                    return Some(minute);
                }
            }
            None
        };
        let hot = nucleation_time(true).expect("hot cathode nucleates");
        let cold = nucleation_time(false).unwrap_or(901);
        assert!(
            hot < cold,
            "hot-cathode {hot} min vs cold-cathode {cold} min"
        );
    }

    #[test]
    fn neighbour_heat_accelerates_wire_healing() {
        // Heal the same void with the cathode end warm vs cool: the warm
        // end refills faster — heat is a healing resource for EM too.
        let mut stressed = EmWire::paper_wire();
        stressed.advance(Seconds::from_minutes(400.0), J_STRESS);
        let dr0 = stressed.delta_resistance().value();
        assert!(dr0 > 0.0);
        let length = stressed.geometry().length_m;

        let heal = |warm: f64| {
            let mut w = stressed.clone();
            w.advance_with_profile(Seconds::from_minutes(40.0), J_RECOVER, |x| {
                let frac = x / length;
                Celsius::new(warm - (warm - 170.0) * frac).to_kelvin()
            });
            (dr0 - w.delta_resistance().value()) / dr0
        };
        let warm = heal(230.0);
        let cool = heal(190.0);
        assert!(warm > cool, "warm-end healing {warm} vs cool-end {cool}");
    }

    #[test]
    fn stress_integral_is_conserved_with_blocked_boundaries() {
        // With no void, the Korhonen equation only redistributes stress:
        // the control-volume-weighted integral of σ must stay at 0 (atoms
        // are neither created nor destroyed).
        let mut w = EmWire::paper_wire();
        w.advance(Seconds::from_minutes(150.0), J_STRESS);
        assert!(!w.has_void(), "test requires the pre-nucleation phase");
        let integral: f64 = w
            .stress_profile()
            .iter()
            .zip(w.mesh.widths())
            .map(|((_, sigma), width)| sigma * width)
            .sum();
        // Compare against the scale of the stress actually present.
        let scale: f64 = w
            .stress_profile()
            .iter()
            .zip(w.mesh.widths())
            .map(|((_, sigma), width)| sigma.abs() * width)
            .sum();
        assert!(
            integral.abs() < 1e-9 * scale.max(1e-300),
            "conservation violated: ∫σ = {integral:.3e} vs scale {scale:.3e}"
        );
    }

    #[test]
    fn zero_duration_advance_is_a_no_op() {
        let mut w = EmWire::paper_wire();
        w.advance(Seconds::ZERO, J_STRESS);
        assert_eq!(w.time(), Seconds::ZERO);
        assert!(!w.has_void());
    }

    #[test]
    fn stress_profile_is_monotone_between_ends_early_on() {
        let mut w = EmWire::paper_wire();
        w.advance(Seconds::from_minutes(60.0), J_STRESS);
        let profile = w.stress_profile();
        assert_eq!(profile.len(), 181);
        // Tension at x=0 decays toward the quiet middle.
        let first = profile[0].1;
        let mid = profile[90].1;
        assert!(first > 0.0 && mid.abs() < 0.05 * first);
    }

    #[test]
    fn blech_short_wire_is_immortal() {
        // A wire short enough that G·L/2 < σ_crit never nucleates.
        let mut geometry = WireGeometry::paper();
        geometry.length_m = 10.0e-6; // 10 µm
        geometry.resistance_at_room = Ohms::new(35.76 * 10.0e-6 / 2.673e-3);
        let mut w = EmWire::new(
            geometry,
            EmMaterial::damascene_copper(),
            Celsius::new(230.0).to_kelvin(),
            31,
        )
        .unwrap();
        let peak = w
            .material()
            .steady_state_peak(w.geometry(), J_STRESS, w.temperature());
        assert!(peak < w.material().critical_stress);
        // L²/κ ≈ 3.6 h: four hours reaches the (immortal) steady state.
        w.advance(Seconds::from_hours(4.0), J_STRESS);
        assert!(!w.has_void(), "Blech-immortal wire must not nucleate");
    }

    #[test]
    fn temperature_slows_everything_down() {
        // At 105 °C the same stress should not even nucleate in the time
        // that nucleates at 230 °C.
        let mut cold = EmWire::new(
            WireGeometry::paper(),
            EmMaterial::damascene_copper(),
            Celsius::new(105.0).to_kelvin(),
            DEFAULT_NODES,
        )
        .unwrap();
        cold.advance(Seconds::from_minutes(300.0), J_STRESS);
        assert!(!cold.has_void());
    }

    #[test]
    fn non_finite_inputs_are_rejected_at_the_kernel_boundary() {
        let mut w = EmWire::new(
            WireGeometry::paper(),
            EmMaterial::damascene_copper(),
            Celsius::new(230.0).to_kelvin(),
            DEFAULT_NODES,
        )
        .unwrap();
        w.advance(Seconds::from_hours(2.0), J_STRESS);
        let before = w.delta_resistance();
        let t_before = w.time();

        w.advance(Seconds::new(f64::NAN), J_STRESS);
        w.advance(Seconds::from_hours(1.0), CurrentDensity::new(f64::INFINITY));
        assert_eq!(
            w.delta_resistance(),
            before,
            "poisoned inputs must be no-ops, not NaN propagation"
        );
        assert_eq!(w.time(), t_before);
    }
}
