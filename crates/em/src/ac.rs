//! AC (bipolar / pulsed) EM stress: lifetime vs frequency.
//!
//! The paper's prior-work section (its §II-B) summarises the classic AC-EM
//! results it builds on: "the recovery effect of EM under AC stress was
//! firstly studied in [Tao et al. 1996]; the experimental results show that
//! the lifetime increases with the frequency", and "healing can increase
//! the lifetime by several orders of magnitude". The Deep-Healing proposal
//! is essentially *scheduled, asymmetric* AC — so the simulator must (and
//! does) reproduce the underlying frequency dependence.
//!
//! [`ac_stress_experiment`] drives the Korhonen wire with a square-wave
//! current of configurable period and positive duty and reports nucleation
//! and failure times. A 50 %-duty wave whose period is short against the
//! stress-buildup time never lets the boundary tension reach the critical
//! stress: the wire becomes effectively immortal, which is the
//! orders-of-magnitude lifetime gain the literature reports.

use dh_units::{CurrentDensity, Fraction, Pascals, Seconds};

use crate::sim::{EmWire, WireEnd};

/// Outcome of an AC stress run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcOutcome {
    /// Square-wave period.
    pub period: Seconds,
    /// Fraction of each period spent at +j.
    pub duty_positive: Fraction,
    /// Time of void nucleation, if any, within the horizon.
    pub nucleation: Option<Seconds>,
    /// Time of hard failure, if any, within the horizon.
    pub ttf: Option<Seconds>,
    /// The largest boundary tension reached during the run.
    pub peak_stress: Pascals,
}

impl AcOutcome {
    /// Whether the wire survived the whole horizon without even
    /// nucleating — effective immortality at this frequency.
    pub fn is_effectively_immortal(&self) -> bool {
        self.nucleation.is_none() && self.ttf.is_none()
    }
}

/// Drives `wire` with a square wave: `+j` for `duty_positive` of each
/// `period`, `−j` for the rest, until hard failure or `horizon`.
///
/// `period == Seconds::ZERO` (or a duty of 1) degenerates to DC stress.
pub fn ac_stress_experiment(
    mut wire: EmWire,
    j: CurrentDensity,
    period: Seconds,
    duty_positive: Fraction,
    horizon: Seconds,
) -> AcOutcome {
    let dc = period.value() <= 0.0 || duty_positive >= Fraction::ONE;
    let pos_time = if dc {
        horizon
    } else {
        period * duty_positive.value()
    };
    let neg_time = if dc { Seconds::ZERO } else { period - pos_time };

    let mut nucleation = None;
    let mut ttf = None;
    let mut peak: f64 = 0.0;
    // March in phase-aligned chunks; cap each advance for bookkeeping.
    let chunk = Seconds::from_minutes(10.0);
    let mut t = Seconds::ZERO;
    'outer: while t < horizon {
        for (phase_len, sign) in [(pos_time, 1.0), (neg_time, -1.0)] {
            let mut left = phase_len.min(horizon - t);
            while left.value() > 0.0 {
                let step = left.min(chunk);
                wire.advance(step, j * sign);
                t += step;
                left -= step;
                peak = peak
                    .max(wire.end_stress(WireEnd::Cathode).value())
                    .max(wire.end_stress(WireEnd::Anode).value());
                if nucleation.is_none() && wire.has_void() {
                    nucleation = Some(t);
                }
                if wire.is_failed() {
                    ttf = Some(t);
                    break 'outer;
                }
            }
            if t >= horizon {
                break 'outer;
            }
        }
    }
    AcOutcome {
        period,
        duty_positive,
        nucleation,
        ttf,
        peak_stress: Pascals::new(peak),
    }
}

/// Sweeps square-wave periods at a fixed duty and returns one outcome per
/// period (plus DC as `period = 0`).
pub fn frequency_sweep(
    j: CurrentDensity,
    duty_positive: Fraction,
    periods: &[Seconds],
    horizon: Seconds,
) -> Vec<AcOutcome> {
    periods
        .iter()
        .map(|&p| ac_stress_experiment(EmWire::paper_wire(), j, p, duty_positive, horizon))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j() -> CurrentDensity {
        CurrentDensity::from_ma_per_cm2(7.96)
    }

    #[test]
    fn dc_baseline_fails_within_the_horizon() {
        let out = ac_stress_experiment(
            EmWire::paper_wire(),
            j(),
            Seconds::ZERO,
            Fraction::ONE,
            Seconds::from_hours(24.0),
        );
        assert!(out.nucleation.is_some());
        assert!(out.ttf.is_some());
    }

    #[test]
    fn lifetime_increases_with_frequency() {
        // Tao et al.'s observation, reproduced: same duty, shorter period →
        // later nucleation (or none at all).
        let horizon = Seconds::from_hours(30.0);
        let duty = Fraction::clamped(0.75); // net-positive stress
        let outs = frequency_sweep(
            j(),
            duty,
            &[
                Seconds::ZERO,
                Seconds::from_minutes(240.0),
                Seconds::from_minutes(60.0),
            ],
            horizon,
        );
        let nuc = |o: &AcOutcome| o.nucleation.map(|t| t.value()).unwrap_or(f64::INFINITY);
        assert!(
            nuc(&outs[0]) < nuc(&outs[1]),
            "dc {:?} vs slow AC {:?}",
            outs[0],
            outs[1]
        );
        assert!(
            nuc(&outs[1]) < nuc(&outs[2]) || outs[2].nucleation.is_none(),
            "slow AC {:?} vs fast AC {:?}",
            outs[1],
            outs[2]
        );
    }

    #[test]
    fn balanced_fast_ac_is_effectively_immortal() {
        // 50 % duty with a period far below the ~200 min nucleation time:
        // tension never builds to critical.
        let out = ac_stress_experiment(
            EmWire::paper_wire(),
            j(),
            Seconds::from_minutes(20.0),
            Fraction::clamped(0.5),
            Seconds::from_hours(30.0),
        );
        assert!(out.is_effectively_immortal(), "{out:?}");
        assert!(out.peak_stress < Pascals::from_mpa(400.0));
    }

    #[test]
    fn peak_stress_decreases_with_frequency_at_balanced_duty() {
        let horizon = Seconds::from_hours(8.0);
        let mut prev = f64::INFINITY;
        for period_min in [240.0, 120.0, 40.0] {
            let out = ac_stress_experiment(
                EmWire::paper_wire(),
                j(),
                Seconds::from_minutes(period_min),
                Fraction::clamped(0.5),
                horizon,
            );
            assert!(
                out.peak_stress.value() < prev * 1.05,
                "period {period_min} min: peak {} MPa vs prev {} MPa",
                out.peak_stress.as_mpa(),
                prev / 1e6
            );
            prev = out.peak_stress.value();
        }
    }

    #[test]
    fn asymmetric_duty_behaves_like_derated_dc() {
        // 75 % duty ≈ 50 % net drive: nucleation near 4× the DC time
        // (σ ∝ G_eff·√t ⇒ t_nuc ∝ 1/G_eff²).
        let out = ac_stress_experiment(
            EmWire::paper_wire(),
            j(),
            Seconds::from_minutes(40.0),
            Fraction::clamped(0.75),
            Seconds::from_hours(40.0),
        );
        let nuc = out
            .nucleation
            .expect("net-positive stress nucleates")
            .as_minutes();
        assert!((500.0..=1400.0).contains(&nuc), "nucleated at {nuc} min");
    }
}
