//! Wire geometry and temperature-dependent electrical resistance.
//!
//! The paper's test structure (its Fig. 3):
//!
//! | property | value |
//! |---|---|
//! | technology | 180 nm, dual-damascene copper, metal 6 |
//! | length | 2.673 mm |
//! | width | 1.57 µm |
//! | thickness | 0.8 µm |
//! | resistance @ room temperature | 35.76 Ω |

use dh_units::constants::ROOM_TEMPERATURE_CELSIUS;
use dh_units::error::ensure_positive;
use dh_units::{Amperes, CurrentDensity, Kelvin, Ohms};

use crate::error::EmError;

/// Physical geometry and reference resistance of a metal test wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireGeometry {
    /// Wire length, metres.
    pub length_m: f64,
    /// Wire width, metres.
    pub width_m: f64,
    /// Wire (metal) thickness, metres.
    pub thickness_m: f64,
    /// Measured resistance at room temperature (20 °C).
    pub resistance_at_room: Ohms,
    /// Effective temperature coefficient of resistance, 1/K.
    ///
    /// This is a *lumped* coefficient calibrated so the wire resistance at
    /// the oven temperature matches the paper's Fig. 5 baseline (~72.9 Ω at
    /// 230 °C); it folds the copper TCR together with Joule self-heating of
    /// the stressed wire.
    pub tcr_per_k: f64,
}

impl WireGeometry {
    /// The paper's Fig. 3 test wire.
    pub fn paper() -> Self {
        Self {
            length_m: 2.673e-3,
            width_m: 1.57e-6,
            thickness_m: 0.8e-6,
            resistance_at_room: Ohms::new(35.76),
            // 35.76 Ω · (1 + 0.00494 · 210 K) ≈ 72.9 Ω at 230 °C.
            tcr_per_k: 4.94e-3,
        }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::Quantity`] if any dimension or the reference
    /// resistance is not strictly positive.
    pub fn validated(self) -> Result<Self, EmError> {
        ensure_positive("wire length", self.length_m)?;
        ensure_positive("wire width", self.width_m)?;
        ensure_positive("wire thickness", self.thickness_m)?;
        ensure_positive(
            "room-temperature resistance",
            self.resistance_at_room.value(),
        )?;
        ensure_positive("temperature coefficient", self.tcr_per_k)?;
        Ok(self)
    }

    /// Conducting cross-section area, m².
    pub fn cross_section_m2(&self) -> f64 {
        self.width_m * self.thickness_m
    }

    /// Effective resistivity at room temperature implied by the measured
    /// resistance, Ω·m.
    pub fn effective_resistivity_ohm_m(&self) -> f64 {
        self.resistance_at_room.value() * self.cross_section_m2() / self.length_m
    }

    /// Void-free wire resistance at temperature `t`.
    pub fn resistance_at(&self, t: Kelvin) -> Ohms {
        let dt = t.to_celsius().value() - ROOM_TEMPERATURE_CELSIUS;
        self.resistance_at_room * (1.0 + self.tcr_per_k * dt)
    }

    /// Resistivity at temperature `t`, Ω·m.
    pub fn resistivity_at(&self, t: Kelvin) -> f64 {
        self.resistance_at(t).value() * self.cross_section_m2() / self.length_m
    }

    /// The current corresponding to a current density through this wire.
    pub fn current_for(&self, j: CurrentDensity) -> Amperes {
        Amperes::new(j.value() * self.cross_section_m2())
    }

    /// The current density corresponding to a current through this wire.
    pub fn density_for(&self, i: Amperes) -> CurrentDensity {
        CurrentDensity::new(i.value() / self.cross_section_m2())
    }
}

impl Default for WireGeometry {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_units::Celsius;

    #[test]
    fn paper_wire_resistance_at_oven_temperature_matches_fig5_baseline() {
        let w = WireGeometry::paper();
        let r = w.resistance_at(Celsius::new(230.0).to_kelvin());
        assert!((r.value() - 72.9).abs() < 0.3, "R(230°C) = {r}");
    }

    #[test]
    fn room_temperature_resistance_is_the_reference() {
        let w = WireGeometry::paper();
        let r = w.resistance_at(Celsius::new(20.0).to_kelvin());
        assert!((r.value() - 35.76).abs() < 1e-9);
    }

    #[test]
    fn effective_resistivity_is_near_bulk_copper() {
        let w = WireGeometry::paper();
        let rho = w.effective_resistivity_ohm_m();
        assert!(rho > 1.3e-8 && rho < 2.2e-8, "rho = {rho}");
    }

    #[test]
    fn current_and_density_round_trip() {
        let w = WireGeometry::paper();
        let j = CurrentDensity::from_ma_per_cm2(7.96);
        let i = w.current_for(j);
        // 7.96e10 A/m² × 1.256e-12 m² ≈ 0.1 A.
        assert!((i.value() - 0.1).abs() < 0.01, "I = {i}");
        let back = w.density_for(i);
        assert!((back.value() - j.value()).abs() / j.value() < 1e-12);
    }

    #[test]
    fn validation_rejects_degenerate_geometry() {
        let mut w = WireGeometry::paper();
        w.length_m = 0.0;
        assert!(w.validated().is_err());
        let mut w = WireGeometry::paper();
        w.resistance_at_room = Ohms::new(-1.0);
        assert!(w.validated().is_err());
        assert!(WireGeometry::paper().validated().is_ok());
    }
}
