//! Black's-equation lifetime statistics for EM-limited populations.
//!
//! The PDE simulator of [`crate::sim`] models one wire in detail; fleet- and
//! system-level reasoning (the `dh-sched` crate) needs closed-form lifetime
//! statistics. Black's equation gives the median time to failure
//!
//! ```text
//! MTF = A · j^(−n) · exp(Ea / k_B T)
//! ```
//!
//! with a log-normal failure-time distribution around it. The prefactor `A`
//! is calibrated so the paper wire's simulated failure time under the
//! accelerated condition matches the PDE model, letting the scheduler
//! de-rate accelerated results to use conditions consistently.

use dh_units::constants::BOLTZMANN_EV_PER_K;
use dh_units::error::ensure_positive;
use dh_units::{CurrentDensity, Kelvin, Seconds};

use crate::error::EmError;

/// Black's-equation lifetime model with log-normal statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlackModel {
    /// Prefactor A, seconds · (A/m²)^n.
    pub prefactor: f64,
    /// Current-density exponent n (≈2 for nucleation-limited failure).
    pub exponent: f64,
    /// Activation energy, eV.
    pub activation_ev: f64,
    /// Log-normal shape parameter (sigma of ln TTF).
    pub sigma: f64,
}

impl BlackModel {
    /// A model calibrated so the median TTF at the paper's accelerated
    /// condition (230 °C, 7.96 MA/cm²) is ≈11 hours, matching the PDE
    /// simulator's continuous-stress failure time.
    pub fn calibrated_to_paper() -> Self {
        let exponent = 2.0;
        let activation_ev = 0.86;
        let t = Kelvin::new(230.0 + 273.15);
        let j = CurrentDensity::from_ma_per_cm2(7.96);
        let target = Seconds::from_hours(11.0);
        let prefactor = target.value() * j.value().powf(exponent)
            / (activation_ev / (BOLTZMANN_EV_PER_K * t.value())).exp();
        Self {
            prefactor,
            exponent,
            activation_ev,
            sigma: 0.3,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidMaterial`] for non-positive parameters.
    pub fn validated(self) -> Result<Self, EmError> {
        let check = |what: &'static str, v: f64| {
            ensure_positive(what, v).map_err(|e| EmError::InvalidMaterial(e.to_string()))
        };
        check("prefactor", self.prefactor)?;
        check("exponent", self.exponent)?;
        check("activation energy", self.activation_ev)?;
        check("sigma", self.sigma)?;
        Ok(self)
    }

    /// Median time to failure at a stress condition.
    pub fn median_ttf(&self, j: CurrentDensity, t: Kelvin) -> Seconds {
        let j_abs = j.value().abs().max(1.0);
        // Black's classic n = 2 is the default and this sits inside every
        // Miner's-rule step, so divide by the square instead of `powf`.
        let j_term = if self.exponent == 2.0 {
            1.0 / (j_abs * j_abs)
        } else {
            j_abs.powf(-self.exponent)
        };
        Seconds::new(
            self.prefactor * j_term * (self.activation_ev / (BOLTZMANN_EV_PER_K * t.value())).exp(),
        )
    }

    /// The TTF quantile `q ∈ (0, 1)` of the log-normal population (e.g.
    /// `q = 0.001` for a 0.1 % failure budget).
    pub fn ttf_quantile(&self, j: CurrentDensity, t: Kelvin, q: f64) -> Seconds {
        let median = self.median_ttf(j, t);
        let z = inverse_normal_cdf(q.clamp(1e-12, 1.0 - 1e-12));
        Seconds::new(median.value() * (self.sigma * z).exp())
    }

    /// Acceleration factor between a use condition and a test condition
    /// (how much faster the test ages the wire).
    pub fn acceleration_factor(
        &self,
        j_use: CurrentDensity,
        t_use: Kelvin,
        j_test: CurrentDensity,
        t_test: Kelvin,
    ) -> f64 {
        self.median_ttf(j_use, t_use) / self.median_ttf(j_test, t_test)
    }
}

impl Default for BlackModel {
    fn default() -> Self {
        Self::calibrated_to_paper()
    }
}

/// Acklam-style rational approximation of the standard normal inverse CDF
/// (max absolute error ≈ 1.15e-9 — far below the model's own accuracy).
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_units::Celsius;

    fn model() -> BlackModel {
        BlackModel::calibrated_to_paper()
    }

    #[test]
    fn median_matches_calibration_target() {
        let ttf = model().median_ttf(
            CurrentDensity::from_ma_per_cm2(7.96),
            Celsius::new(230.0).to_kelvin(),
        );
        assert!(
            (ttf.as_hours() - 11.0).abs() < 1e-6,
            "ttf = {} h",
            ttf.as_hours()
        );
    }

    #[test]
    fn use_condition_lifetime_is_years() {
        // 1 MA/cm² at 85 °C: a realistic local-PDN stress — should live for
        // years, not hours.
        let ttf = model().median_ttf(
            CurrentDensity::from_ma_per_cm2(1.0),
            Celsius::new(85.0).to_kelvin(),
        );
        assert!(ttf.as_years() > 2.0, "ttf = {} years", ttf.as_years());
    }

    #[test]
    fn ttf_decreases_with_current_and_temperature() {
        let m = model();
        let t85 = Celsius::new(85.0).to_kelvin();
        let t125 = Celsius::new(125.0).to_kelvin();
        let j1 = CurrentDensity::from_ma_per_cm2(1.0);
        let j2 = CurrentDensity::from_ma_per_cm2(2.0);
        assert!(m.median_ttf(j2, t85) < m.median_ttf(j1, t85));
        assert!(m.median_ttf(j1, t125) < m.median_ttf(j1, t85));
        // n = 2: doubling current quarters the lifetime.
        let ratio = m.median_ttf(j1, t85) / m.median_ttf(j2, t85);
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_bracket_the_median() {
        let m = model();
        let j = CurrentDensity::from_ma_per_cm2(1.0);
        let t = Celsius::new(85.0).to_kelvin();
        let med = m.median_ttf(j, t);
        let early = m.ttf_quantile(j, t, 0.001);
        let late = m.ttf_quantile(j, t, 0.999);
        assert!(early < med && med < late);
        let mid = m.ttf_quantile(j, t, 0.5);
        assert!((mid.value() - med.value()).abs() / med.value() < 1e-6);
    }

    #[test]
    fn inverse_normal_cdf_is_accurate() {
        // Spot checks against known values.
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959_964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959_964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.841_344_746) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn acceleration_factor_is_consistent() {
        let m = model();
        let af = m.acceleration_factor(
            CurrentDensity::from_ma_per_cm2(1.0),
            Celsius::new(85.0).to_kelvin(),
            CurrentDensity::from_ma_per_cm2(7.96),
            Celsius::new(230.0).to_kelvin(),
        );
        assert!(
            af > 100.0,
            "accelerated test should be >100× faster, af = {af}"
        );
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut m = model();
        m.sigma = 0.0;
        assert!(m.validated().is_err());
        assert!(model().validated().is_ok());
    }

    #[test]
    fn reverse_current_magnitude_is_used() {
        let m = model();
        let t = Celsius::new(85.0).to_kelvin();
        let fwd = m.median_ttf(CurrentDensity::from_ma_per_cm2(1.0), t);
        let rev = m.median_ttf(CurrentDensity::from_ma_per_cm2(-1.0), t);
        assert_eq!(fwd, rev);
    }
}
