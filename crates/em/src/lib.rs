//! Electromigration (EM) wearout and **active recovery** models.
//!
//! This crate reproduces the EM half of Guo & Stan, *"Deep Healing: Ease the
//! BTI and EM Wearout Crisis by Activating Recovery"* (2017). The paper
//! stresses an on-chip copper test wire (180 nm node, M6, dual-damascene,
//! 2.673 mm × 1.57 µm × 0.8 µm, 35.76 Ω at room temperature) at 230 °C and
//! ±7.96 MA/cm² and demonstrates that
//!
//! * EM evolution has two phases — **void nucleation** (resistance flat)
//!   followed by **void growth** (resistance rising) — Fig. 5;
//! * reversing the current *activates* recovery, and elevated temperature
//!   *accelerates* it: >75 % of the resistance increase recovers within 1/5
//!   of the stress time, but a **permanent component** remains when the
//!   recovery is applied late (Fig. 5);
//! * recovery applied **early** in the void-growth phase achieves *full*
//!   recovery, though over-recovery causes reverse-direction EM (Fig. 6);
//! * **periodic scheduled recovery during the nucleation phase** delays
//!   nucleation ~3× and extends time-to-failure accordingly (Fig. 7).
//!
//! The model is a 1-D Korhonen-type stress-evolution PDE
//! (`∂σ/∂t = −∂F/∂x`, `F = −κ(∂σ/∂x + G)`) on an end-refined mesh with
//! blocking (dual-damascene barrier) boundaries, coupled to a void model at
//! each wire end: a void nucleates when the boundary tension reaches the
//! critical stress and then exchanges volume with the line through the
//! boundary atomic flux. Void volume splits into *mobile* and *pinned*
//! parts; pinning (interface consolidation, ~hours) is the permanent
//! component that early recovery avoids.
//!
//! # Quick start
//!
//! ```
//! use dh_em::EmWire;
//! use dh_units::{CurrentDensity, Seconds};
//!
//! let mut wire = EmWire::paper_wire();
//! let j = CurrentDensity::from_ma_per_cm2(7.96);
//! wire.advance(Seconds::from_minutes(30.0), j);
//! assert!(!wire.has_void()); // still incubating
//! assert!(wire.resistance().value() > 70.0); // ~72.9 Ω at 230 °C
//! ```

#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > 0.0)` deliberately catches NaN
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ac;
pub mod black;
pub mod error;
pub mod material;
pub mod mesh;
pub mod network;
pub mod population;
pub mod schedule;
pub mod sim;
mod stencil;
pub mod wire;

pub use error::EmError;
pub use material::EmMaterial;
pub use sim::{EmWire, WireEnd};
pub use wire::WireGeometry;
