//! Vectorized Korhonen PDE stencil kernels.
//!
//! The two hot loops of [`crate::sim::EmWire`]'s explicit substep — the
//! face-flux gather and the interior control-volume update — compiled for
//! both AVX2 and plain scalar through [`dh_simd::dispatch!`]. Divisions
//! by the (loop-invariant) mesh spacings are replaced by multiplications
//! with reciprocal tables hoisted once per `advance` call: `vdivpd` is an
//! order of magnitude slower than `vmulpd` and would dominate the
//! vectorized stencil. Both backends execute the identical per-element
//! IEEE sequence, so trajectories are bit-identical under either; the
//! pre-reciprocal arithmetic survives as `EmWire::advance_pr4`, the
//! measured baseline.

/// Face fluxes `F[i] = −κ[i]·((σ[i+1] − σ[i])·inv_dx[i] + g[i])` between
/// nodes `i` and `i+1`.
pub(crate) use self::kernels::{face_fluxes, interior_update};

mod kernels {
    dh_simd::dispatch! {
        /// Gathers the face fluxes for one substep.
        pub(crate) fn face_fluxes(
            flux: &mut [f64],
            sigma: &[f64],
            kappa: &[f64],
            g: &[f64],
            inv_face_dx: &[f64],
        ) {
            let n_faces = flux.len();
            assert_eq!(sigma.len(), n_faces + 1);
            assert_eq!(kappa.len(), n_faces);
            assert_eq!(g.len(), n_faces);
            assert_eq!(inv_face_dx.len(), n_faces);
            for i in 0..n_faces {
                flux[i] = -kappa[i] * ((sigma[i + 1] - sigma[i]) * inv_face_dx[i] + g[i]);
            }
        }
    }

    dh_simd::dispatch! {
        /// Applies the interior control-volume update
        /// `σ[i] += −dt·(F[i] − F[i−1])·inv_w[i]` (boundary nodes are
        /// handled separately by the caller).
        pub(crate) fn interior_update(
            sigma: &mut [f64],
            flux: &[f64],
            inv_widths: &[f64],
            dt: f64,
        ) {
            let n = sigma.len();
            assert_eq!(flux.len(), n - 1);
            assert_eq!(inv_widths.len(), n);
            for i in 1..n - 1 {
                sigma[i] += -dt * (flux[i] - flux[i - 1]) * inv_widths[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_are_bit_identical() {
        let n = 181;
        let sigma: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 1e8).collect();
        let kappa: Vec<f64> = (0..n - 1).map(|i| 1e-11 + i as f64 * 1e-14).collect();
        let g: Vec<f64> = (0..n - 1).map(|i| 1e13 + i as f64 * 1e10).collect();
        let inv_dx: Vec<f64> = (0..n - 1).map(|i| 1.0 / (1e-5 + i as f64 * 1e-8)).collect();
        let inv_w: Vec<f64> = (0..n).map(|i| 1.0 / (1e-5 + i as f64 * 1e-8)).collect();

        let run = || {
            let mut s = sigma.clone();
            let mut flux = vec![0.0; n - 1];
            face_fluxes(&mut flux, &s, &kappa, &g, &inv_dx);
            interior_update(&mut s, &flux, &inv_w, 1e-3);
            (s, flux)
        };
        let (s_auto, f_auto) = run();
        dh_simd::force_scalar(true);
        let (s_scalar, f_scalar) = run();
        dh_simd::force_scalar(false);
        for (a, b) in s_auto.iter().zip(&s_scalar) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in f_auto.iter().zip(&f_scalar) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
