//! Error types for the EM models.

use core::fmt;

use dh_units::QuantityError;

/// Error returned by EM model construction and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum EmError {
    /// A quantity failed validation.
    Quantity(QuantityError),
    /// The mesh is too coarse or degenerate for a stable integration.
    InvalidMesh(String),
    /// A material parameter is non-physical.
    InvalidMaterial(String),
    /// A population statistic was requested but no wire failed.
    EmptyPopulation,
    /// A statistic needs more failed samples than the population holds
    /// (e.g. a spread estimate from a single failure).
    InsufficientSamples {
        /// Failed samples available.
        got: usize,
        /// Minimum required by the statistic.
        need: usize,
    },
    /// A current solve was requested on a network whose source and sink
    /// no longer connect (the failure cascade completed).
    Disconnected {
        /// Segments that have failed open.
        failed_segments: usize,
    },
}

impl fmt::Display for EmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Quantity(e) => write!(f, "invalid quantity: {e}"),
            Self::InvalidMesh(why) => write!(f, "invalid mesh: {why}"),
            Self::InvalidMaterial(why) => write!(f, "invalid material: {why}"),
            Self::EmptyPopulation => write!(f, "no wire in the population failed"),
            Self::InsufficientSamples { got, need } => {
                write!(f, "statistic needs {need} failed samples, got {got}")
            }
            Self::Disconnected { failed_segments } => {
                write!(
                    f,
                    "network disconnected ({failed_segments} segments failed open)"
                )
            }
        }
    }
}

impl std::error::Error for EmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Quantity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QuantityError> for EmError {
    fn from(e: QuantityError) -> Self {
        Self::Quantity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_concise() {
        assert!(EmError::InvalidMesh("too few nodes".into())
            .to_string()
            .contains("mesh"));
        let e: EmError = QuantityError::NegativeDuration(-1.0).into();
        assert!(e.to_string().contains("invalid quantity"));
        let e = EmError::Disconnected { failed_segments: 2 };
        assert!(e.to_string().contains("2 segments"));
    }
}
