//! End-refined 1-D mesh for the stress-evolution PDE.
//!
//! EM stress action concentrates within a few diffusion lengths
//! (√(κt) ≈ 10–30 µm here) of the blocked wire ends, while the wire itself
//! is millimetres long. A uniform mesh fine enough for the ends would waste
//! two orders of magnitude of nodes in the quiet middle, so the mesh
//! clusters nodes at both ends with a smooth cosine grading.

use crate::error::EmError;

/// A static, end-refined 1-D mesh over `[0, length]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    /// Node positions, strictly increasing, `x[0] = 0`, `x[n-1] = length`.
    nodes: Vec<f64>,
    /// Control-volume widths per node (sum equals the length).
    widths: Vec<f64>,
}

impl Mesh {
    /// Builds an end-refined mesh with `n` nodes over a wire of `length_m`.
    ///
    /// `clustering ∈ [0, 1)` controls end refinement: 0 is uniform, values
    /// near 1 concentrate nodes at the two ends.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::InvalidMesh`] for `n < 3`, non-positive length, or
    /// `clustering` outside `[0, 1)`.
    pub fn end_refined(n: usize, length_m: f64, clustering: f64) -> Result<Self, EmError> {
        if n < 3 {
            return Err(EmError::InvalidMesh(format!(
                "need at least 3 nodes, got {n}"
            )));
        }
        if !(length_m > 0.0) || !length_m.is_finite() {
            return Err(EmError::InvalidMesh(format!(
                "length must be positive, got {length_m}"
            )));
        }
        if !(0.0..1.0).contains(&clustering) {
            return Err(EmError::InvalidMesh(format!(
                "clustering must lie in [0, 1), got {clustering}"
            )));
        }
        // x(ξ) = L · (ξ − s·sin(2πξ)/(2π)) has dx/dξ = L(1 − s·cos(2πξ)):
        // smallest spacing (1−s) at both ends, largest (1+s) mid-span.
        let nodes: Vec<f64> = (0..n)
            .map(|i| {
                let xi = i as f64 / (n - 1) as f64;
                length_m
                    * (xi
                        - clustering * (2.0 * std::f64::consts::PI * xi).sin()
                            / (2.0 * std::f64::consts::PI))
            })
            .collect();
        let mut widths = vec![0.0; n];
        for i in 0..n {
            let left = if i == 0 {
                nodes[0]
            } else {
                (nodes[i - 1] + nodes[i]) / 2.0
            };
            let right = if i == n - 1 {
                nodes[n - 1]
            } else {
                (nodes[i] + nodes[i + 1]) / 2.0
            };
            widths[i] = right - left;
        }
        Ok(Self { nodes, widths })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the mesh is empty (never true for constructed meshes).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node positions, metres.
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Control-volume widths, metres.
    pub fn widths(&self) -> &[f64] {
        &self.widths
    }

    /// The smallest inter-node spacing (controls the explicit stability
    /// limit).
    pub fn min_spacing(&self) -> f64 {
        self.nodes
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(f64::INFINITY, f64::min)
    }

    /// Spacing between nodes `i` and `i+1`.
    pub fn face_spacing(&self, i: usize) -> f64 {
        self.nodes[i + 1] - self.nodes[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_span_the_wire_and_increase() {
        let m = Mesh::end_refined(101, 2.673e-3, 0.95).unwrap();
        assert_eq!(m.len(), 101);
        assert_eq!(m.nodes()[0], 0.0);
        assert!((m.nodes()[100] - 2.673e-3).abs() < 1e-12);
        for w in m.nodes().windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn control_volumes_tile_the_wire() {
        let m = Mesh::end_refined(77, 1.0e-3, 0.9).unwrap();
        let total: f64 = m.widths().iter().sum();
        assert!((total - 1.0e-3).abs() < 1e-12);
        assert!(m.widths().iter().all(|&w| w > 0.0));
    }

    #[test]
    fn clustering_refines_the_ends() {
        let m = Mesh::end_refined(101, 1.0e-3, 0.95).unwrap();
        let first = m.face_spacing(0);
        let mid = m.face_spacing(50);
        assert!(first < mid / 10.0, "first {first:.3e} vs mid {mid:.3e}");
        // Symmetric: last spacing matches first.
        let last = m.face_spacing(99);
        assert!((first - last).abs() / first < 1e-6);
    }

    #[test]
    fn uniform_mesh_when_clustering_is_zero() {
        let m = Mesh::end_refined(11, 1.0, 0.0).unwrap();
        for i in 0..10 {
            assert!((m.face_spacing(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        assert!(Mesh::end_refined(2, 1.0, 0.5).is_err());
        assert!(Mesh::end_refined(10, 0.0, 0.5).is_err());
        assert!(Mesh::end_refined(10, 1.0, 1.0).is_err());
        assert!(Mesh::end_refined(10, 1.0, -0.1).is_err());
        assert!(Mesh::end_refined(10, f64::NAN, 0.5).is_err());
    }

    #[test]
    fn min_spacing_matches_end_spacing_for_clustered_mesh() {
        let m = Mesh::end_refined(201, 2.673e-3, 0.95).unwrap();
        assert!((m.min_spacing() - m.face_spacing(0)).abs() / m.min_spacing() < 1e-9);
        // Fine enough to resolve a ~10 µm diffusion length.
        assert!(
            m.min_spacing() < 2.0e-6,
            "min spacing {:.3e}",
            m.min_spacing()
        );
    }
}
