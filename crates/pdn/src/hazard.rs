//! EM hazard analysis over a solved PDN.
//!
//! Maps every branch current density through the Black lifetime model of
//! `dh-em`, ranks the results, and evaluates the effect of the assist
//! circuitry's *EM Active Recovery* duty cycling: reversing the local-grid
//! current for a fraction of the time heals the accumulating damage, which
//! to first order scales the net wear rate by `(1 − duty) − η·duty` (η =
//! healing efficiency; slightly below 1 because of the pinned component).

use dh_em::black::BlackModel;
use dh_units::{Fraction, Kelvin, Seconds};

use crate::grid::{Branch, LayerClass, PdnSolution};

/// One ranked hazard entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HazardEntry {
    /// The branch.
    pub branch: Branch,
    /// Median TTF under constant stress at the analysis temperature.
    pub median_ttf: Seconds,
}

/// EM hazard report over a PDN solution.
#[derive(Debug, Clone, PartialEq)]
pub struct HazardReport {
    /// All branches with nonzero current, sorted most-hazardous first.
    pub ranked: Vec<HazardEntry>,
    /// Analysis temperature.
    pub temperature: Kelvin,
}

impl HazardReport {
    /// Analyzes a solved PDN with a Black lifetime model at `temperature`.
    pub fn analyze(solution: &PdnSolution, model: &BlackModel, temperature: Kelvin) -> Self {
        let mut ranked: Vec<HazardEntry> = solution
            .branches
            .iter()
            .filter(|b| b.current_a > 0.0)
            .map(|&branch| HazardEntry {
                branch,
                median_ttf: model.median_ttf(branch.density, temperature),
            })
            .collect();
        ranked.sort_by(|a, b| a.median_ttf.value().total_cmp(&b.median_ttf.value()));
        Self {
            ranked,
            temperature,
        }
    }

    /// The most hazardous entry, if any branch carries current.
    pub fn worst(&self) -> Option<&HazardEntry> {
        self.ranked.first()
    }

    /// The most hazardous entry within a layer class.
    pub fn worst_in(&self, layer: LayerClass) -> Option<&HazardEntry> {
        self.ranked.iter().find(|e| e.branch.layer == layer)
    }

    /// Count of branches whose median TTF falls below a target lifetime.
    pub fn below_lifetime(&self, lifetime: Seconds) -> usize {
        self.ranked
            .iter()
            .filter(|e| e.median_ttf < lifetime)
            .count()
    }
}

/// The net EM wear-rate factor under current-reversal duty cycling.
///
/// `duty_reverse` is the fraction of time spent in EM Active Recovery;
/// `healing_efficiency` (≤ 1) is how much of forward damage a unit of
/// reverse time undoes. The factor multiplies the DC wear rate; a value of
/// 0 means net wear stops (effective immortality until pinning).
pub fn duty_cycled_wear_factor(duty_reverse: Fraction, healing_efficiency: Fraction) -> f64 {
    let d = duty_reverse.value();
    let eta = healing_efficiency.value();
    ((1.0 - d) - eta * d).max(0.0)
}

/// The TTF extension implied by a wear factor (∞ becomes `None`).
pub fn ttf_extension(duty_reverse: Fraction, healing_efficiency: Fraction) -> Option<f64> {
    let f = duty_cycled_wear_factor(duty_reverse, healing_efficiency);
    (f > 0.0).then(|| 1.0 / f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{PdnConfig, PdnMesh};
    use dh_units::Celsius;

    fn report() -> HazardReport {
        let mesh = PdnMesh::new(PdnConfig::default_chip()).unwrap();
        let sol = mesh.solve_uniform_load(0.25e-3).unwrap();
        HazardReport::analyze(
            &sol,
            &BlackModel::calibrated_to_paper(),
            Celsius::new(85.0).to_kelvin(),
        )
    }

    #[test]
    fn ranking_is_sorted_most_hazardous_first() {
        let r = report();
        assert!(!r.ranked.is_empty());
        for pair in r.ranked.windows(2) {
            assert!(pair[0].median_ttf <= pair[1].median_ttf);
        }
    }

    #[test]
    fn local_layer_dominates_the_hazard_list() {
        // Fig. 11: the thin local grids are the EM-sensitive ones.
        let r = report();
        let worst_local = r.worst_in(LayerClass::Local).unwrap().median_ttf;
        let worst_global = r.worst_in(LayerClass::Global).unwrap().median_ttf;
        assert!(
            worst_local < worst_global,
            "local TTF {} h should be shorter than global {} h",
            worst_local.as_hours(),
            worst_global.as_hours()
        );
        assert_eq!(r.worst().unwrap().branch.layer, LayerClass::Local);
    }

    #[test]
    fn lifetime_budget_counting() {
        let r = report();
        let total = r.ranked.len();
        assert_eq!(r.below_lifetime(Seconds::new(1.0)), 0);
        assert_eq!(r.below_lifetime(Seconds::from_years(1.0e12)), total);
    }

    #[test]
    fn duty_cycling_reduces_wear_monotonically() {
        let eta = Fraction::clamped(0.9);
        let mut prev = f64::INFINITY;
        for d in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
            let f = duty_cycled_wear_factor(Fraction::clamped(d), eta);
            assert!(f < prev || d == 0.0);
            prev = f;
        }
        assert_eq!(duty_cycled_wear_factor(Fraction::ZERO, eta), 1.0);
    }

    #[test]
    fn balanced_duty_stops_net_wear() {
        // 50/50 with near-perfect healing: wear factor ≈ 0 → immortal.
        let f = duty_cycled_wear_factor(Fraction::clamped(0.5), Fraction::ONE);
        assert_eq!(f, 0.0);
        assert!(ttf_extension(Fraction::clamped(0.5), Fraction::ONE).is_none());
    }

    #[test]
    fn modest_duty_gives_meaningful_extension() {
        // 20 % recovery duty at 90 % efficiency: wear 0.62 → ~1.6× TTF.
        let ext = ttf_extension(Fraction::clamped(0.2), Fraction::clamped(0.9)).unwrap();
        assert!((ext - 1.0 / 0.62).abs() < 1e-9);
    }
}
