//! The PDN-aging feedback loop: EM soft wearout raises local-grid
//! resistance, which raises IR drop, over the system's lifetime — and the
//! assist circuitry's current-reversal duty flattens the trajectory.
//!
//! The paper's system argument (Figs. 11–12) is exactly this loop:
//! "although the dynamic margins enabled by [adaptive] solutions can
//! guarantee that the circuit is functioning in the presence of wearout,
//! the wearout itself means that the power/performance metrics will be
//! degraded". Here the *supply* quality degrades: every year of EM wear
//! adds resistance to the local grids and millivolts to the worst-case IR
//! drop.
//!
//! The model is quasi-static: per time step, every local branch
//! accumulates Miner's-rule damage at its own current density (scaled by
//! the duty-cycling wear factor); the aggregate damage scales the local
//! grid resistance (soft EM wearout, up to ~20 % before hard failure), and
//! the mesh is re-solved for the new IR-drop map.

use dh_em::black::BlackModel;
use dh_units::{Fraction, Kelvin, Seconds, TimeSeries};

use crate::grid::{LayerClass, PdnError, PdnMesh};
use crate::hazard::duty_cycled_wear_factor;

/// Soft-wearout resistance increase at damage = 1 (just before failure).
const SOFT_WEAROUT_R_FRACTION: f64 = 0.2;

/// Result of a lifetime wear trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct WearTrajectory {
    /// Worst-case IR drop (millivolts) vs time.
    pub ir_drop_series: TimeSeries,
    /// Mean local-branch damage at the end of the run.
    pub final_mean_damage: f64,
    /// Worst single-branch damage at the end of the run.
    pub final_worst_damage: f64,
    /// IR-drop increase over the run, millivolts.
    pub ir_drop_increase_mv: f64,
}

/// Runs the feedback loop for `years` at temperature `t`, with uniform
/// per-node load `per_node_a` and an EM recovery duty on the local grid.
///
/// # Errors
///
/// Propagates [`PdnError`] from the mesh solves and rejects non-positive
/// horizons.
pub fn wear_trajectory(
    mesh: &PdnMesh,
    per_node_a: f64,
    t: Kelvin,
    duty_reverse: Fraction,
    healing_efficiency: Fraction,
    years: f64,
    steps: usize,
) -> Result<WearTrajectory, PdnError> {
    if !(years > 0.0) || !years.is_finite() || steps == 0 {
        return Err(PdnError::InvalidConfig(format!(
            "need positive years and steps, got {years} / {steps}"
        )));
    }
    let black = BlackModel::calibrated_to_paper();
    let wear_factor = duty_cycled_wear_factor(duty_reverse, healing_efficiency);
    let loads = vec![per_node_a; mesh.config().local_nodes()];

    // Initial solve fixes the per-branch densities (quasi-static: uniform
    // local aging does not redistribute the load-driven currents).
    let initial = mesh.solve(&loads)?;
    let local_branches: Vec<_> = initial
        .branches
        .iter()
        .filter(|b| b.layer == LayerClass::Local && b.current_a > 0.0)
        .collect();
    // Each branch's Black-model TTF costs an `exp` and a `powf`; the sweep
    // is embarrassingly parallel and order-preserving.
    let local_rates: Vec<f64> = dh_exec::par_map(&local_branches, |b| {
        wear_factor / black.median_ttf(b.density, t).value()
    });
    if local_rates.is_empty() {
        return Err(PdnError::InvalidConfig(
            "no current-carrying local branches".into(),
        ));
    }

    let dt = Seconds::from_years(years / steps as f64);
    let mut damages = vec![0.0_f64; local_rates.len()];
    let mut series = TimeSeries::new(format!(
        "worst IR drop (mV), {:.0}% EM recovery duty",
        duty_reverse.as_percent()
    ));
    series.push(Seconds::ZERO, initial.worst_ir_drop_v * 1000.0);

    let mut elapsed = Seconds::ZERO;
    let mut last_drop = initial.worst_ir_drop_v;
    for _ in 0..steps {
        for (d, rate) in damages.iter_mut().zip(&local_rates) {
            *d = (*d + rate * dt.value()).min(1.0);
        }
        let mean = damages.iter().sum::<f64>() / damages.len() as f64;
        let scale = 1.0 + SOFT_WEAROUT_R_FRACTION * mean;
        let solution = mesh.solve_with_local_scale(&loads, scale)?;
        elapsed += dt;
        last_drop = solution.worst_ir_drop_v;
        series.push(elapsed, last_drop * 1000.0);
    }

    let final_mean = damages.iter().sum::<f64>() / damages.len() as f64;
    let final_worst = damages.iter().cloned().fold(0.0, f64::max);
    Ok(WearTrajectory {
        ir_drop_increase_mv: (last_drop - initial.worst_ir_drop_v) * 1000.0,
        ir_drop_series: series,
        final_mean_damage: final_mean,
        final_worst_damage: final_worst,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::PdnConfig;
    use dh_units::Celsius;

    fn mesh() -> PdnMesh {
        PdnMesh::new(PdnConfig::default_chip()).unwrap()
    }

    fn run(duty: f64, years: f64) -> WearTrajectory {
        wear_trajectory(
            &mesh(),
            0.5e-3,
            Celsius::new(105.0).to_kelvin(),
            Fraction::clamped(duty),
            Fraction::clamped(0.9),
            years,
            12,
        )
        .unwrap()
    }

    #[test]
    fn ir_drop_grows_with_age() {
        let out = run(0.0, 10.0);
        assert!(out.ir_drop_increase_mv > 0.0, "{out:?}");
        assert!(out.final_worst_damage > out.final_mean_damage * 0.99);
        // Monotone series.
        let values: Vec<f64> = out.ir_drop_series.iter().map(|s| s.value).collect();
        for pair in values.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-12);
        }
    }

    #[test]
    fn recovery_duty_flattens_the_trajectory() {
        let unprotected = run(0.0, 10.0);
        let protected = run(0.3, 10.0);
        assert!(
            protected.ir_drop_increase_mv < 0.6 * unprotected.ir_drop_increase_mv,
            "protected {} mV vs unprotected {} mV",
            protected.ir_drop_increase_mv,
            unprotected.ir_drop_increase_mv
        );
        assert!(protected.final_mean_damage < unprotected.final_mean_damage);
    }

    #[test]
    fn balanced_duty_freezes_the_grid() {
        let frozen = wear_trajectory(
            &mesh(),
            0.5e-3,
            Celsius::new(105.0).to_kelvin(),
            Fraction::clamped(0.5),
            Fraction::ONE,
            10.0,
            6,
        )
        .unwrap();
        assert!(frozen.final_mean_damage < 1e-12);
        assert!(frozen.ir_drop_increase_mv.abs() < 1e-9);
    }

    #[test]
    fn damage_saturates_at_one() {
        // A very long unprotected run cannot exceed full damage.
        let out = run(0.0, 2000.0);
        assert!(out.final_worst_damage <= 1.0);
        assert!(out.final_mean_damage <= 1.0);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let m = mesh();
        let t = Celsius::new(105.0).to_kelvin();
        assert!(wear_trajectory(&m, 0.5e-3, t, Fraction::ZERO, Fraction::ONE, 0.0, 4).is_err());
        assert!(wear_trajectory(&m, 0.5e-3, t, Fraction::ZERO, Fraction::ONE, 1.0, 0).is_err());
    }

    #[test]
    fn local_scale_solve_rejects_bad_scale() {
        let m = mesh();
        let loads = vec![0.1e-3; m.config().local_nodes()];
        assert!(m.solve_with_local_scale(&loads, 0.0).is_err());
        assert!(m.solve_with_local_scale(&loads, f64::NAN).is_err());
        // And a degraded grid drops more than a fresh one.
        let fresh = m.solve_with_local_scale(&loads, 1.0).unwrap();
        let aged = m.solve_with_local_scale(&loads, 1.2).unwrap();
        assert!(aged.worst_ir_drop_v > fresh.worst_ir_drop_v);
    }
}
