//! Power-delivery-network (PDN) substrate.
//!
//! The paper's Fig. 11 shows the physical context of the assist circuitry:
//! a **global** power grid in the thick top metals (robust against EM), C4
//! bumps feeding it, and **local** VDD/VSS grids in the thin lower metals —
//! "most EM-sensitive" — that the assist circuitry protects by periodically
//! reversing their current.
//!
//! This crate models that stack:
//!
//! * [`solver`] — a sparse conjugate-gradient solver for the (SPD) nodal
//!   conductance system, written in-crate (no linear-algebra dependency);
//! * [`grid`] — a two-layer resistive PDN mesh (global stripes over a local
//!   mesh, vias between them, C4 bumps, per-tile load currents) solved for
//!   IR drop and branch currents;
//! * [`hazard`] — per-branch EM hazard analysis: current densities mapped
//!   through Black's model from `dh-em`, ranked, and re-evaluated under the
//!   assist circuitry's current-reversal duty cycling.
//!
//! # Example
//!
//! ```
//! use dh_pdn::grid::{PdnConfig, PdnMesh};
//!
//! let mesh = PdnMesh::new(PdnConfig::default_chip()).unwrap();
//! let solution = mesh.solve_uniform_load(0.25e-3).unwrap();
//! // IR drop exists but stays within budget for the default chip.
//! assert!(solution.worst_ir_drop_v > 0.0 && solution.worst_ir_drop_v < 0.1);
//! ```

#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > 0.0)` deliberately catches NaN
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod grid;
pub mod hazard;
pub mod solver;
pub mod tower;
pub mod wear_loop;

pub use grid::{PdnConfig, PdnMesh, PdnSolution};
pub use hazard::{duty_cycled_wear_factor, HazardReport};
pub use tower::{LayerRole, MetalLayer, Tower};
