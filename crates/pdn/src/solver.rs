//! Sparse conjugate-gradient solver for nodal conductance systems.
//!
//! PDN nodal analysis produces a symmetric positive-definite system
//! `G·v = i` (conductance Laplacian plus grounding conductances). For the
//! mesh sizes this crate targets (10³–10⁵ nodes) a Jacobi-preconditioned
//! conjugate gradient converges in a few hundred iterations without any
//! external linear-algebra dependency.

/// A sparse symmetric matrix assembled from conductance stamps
/// (coordinate format folded into CSR on finalize).
#[derive(Debug, Clone)]
pub struct SparseSpd {
    n: usize,
    /// CSR row pointers.
    row_ptr: Vec<usize>,
    /// CSR column indices.
    col: Vec<usize>,
    /// CSR values.
    val: Vec<f64>,
    /// Diagonal (for the Jacobi preconditioner).
    diag: Vec<f64>,
}

/// Builder for [`SparseSpd`] via conductance stamps.
#[derive(Debug, Clone)]
pub struct SpdBuilder {
    n: usize,
    /// Off-diagonal stamps (a, b, g) with a ≠ b, plus diagonal additions.
    diag: Vec<f64>,
    off: Vec<(usize, usize, f64)>,
}

impl SpdBuilder {
    /// Creates a builder for an `n`-node system.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            diag: vec![0.0; n],
            off: Vec::new(),
        }
    }

    /// Stamps a conductance `g` between nodes `a` and `b` (`None` = ground).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range nodes or a negative/non-finite conductance.
    pub fn stamp(&mut self, a: Option<usize>, b: Option<usize>, g: f64) {
        assert!(
            g.is_finite() && g >= 0.0,
            "conductance must be >= 0, got {g}"
        );
        match (a, b) {
            (Some(a), Some(b)) => {
                assert!(a < self.n && b < self.n, "node out of range");
                self.diag[a] += g;
                self.diag[b] += g;
                if a != b {
                    self.off.push((a.min(b), a.max(b), g));
                }
            }
            (Some(a), None) | (None, Some(a)) => {
                assert!(a < self.n, "node out of range");
                self.diag[a] += g;
            }
            (None, None) => {}
        }
    }

    /// Finalizes into CSR form.
    pub fn build(mut self) -> SparseSpd {
        // Merge duplicate off-diagonal stamps.
        self.off.sort_unstable_by_key(|x| (x.0, x.1));
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(self.off.len());
        for (a, b, g) in self.off {
            if let Some(last) = merged.last_mut() {
                if last.0 == a && last.1 == b {
                    last.2 += g;
                    continue;
                }
            }
            merged.push((a, b, g));
        }
        // Count entries per row (diagonal + both triangles).
        let n = self.n;
        let mut counts = vec![1usize; n];
        for &(a, b, _) in &merged {
            counts[a] += 1;
            counts[b] += 1;
        }
        let mut row_ptr = vec![0usize; n + 1];
        for i in 0..n {
            row_ptr[i + 1] = row_ptr[i] + counts[i];
        }
        let nnz = row_ptr[n];
        let mut col = vec![0usize; nnz];
        let mut val = vec![0.0; nnz];
        let mut cursor = row_ptr.clone();
        for i in 0..n {
            col[cursor[i]] = i;
            val[cursor[i]] = self.diag[i];
            cursor[i] += 1;
        }
        for &(a, b, g) in &merged {
            col[cursor[a]] = b;
            val[cursor[a]] = -g;
            cursor[a] += 1;
            col[cursor[b]] = a;
            val[cursor[b]] = -g;
            cursor[b] += 1;
        }
        SparseSpd {
            n,
            row_ptr,
            col,
            val,
            diag: self.diag,
        }
    }
}

impl SparseSpd {
    /// Dimension of the system.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `y = A·x`.
    pub fn multiply(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        #[allow(clippy::needless_range_loop)] // i indexes both rows and y
        for i in 0..self.n {
            let mut sum = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                sum += self.val[k] * x[self.col[k]];
            }
            y[i] = sum;
        }
    }

    /// Solves `A·x = b` by Jacobi-preconditioned conjugate gradient.
    ///
    /// Returns `None` if the iteration fails to reach `tol` (relative
    /// residual) within `max_iter` — typically a floating (ungrounded)
    /// system.
    pub fn solve_cg(&self, b: &[f64], tol: f64, max_iter: usize) -> Option<Vec<f64>> {
        assert_eq!(b.len(), self.n);
        let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        if b_norm == 0.0 {
            return Some(vec![0.0; self.n]);
        }
        if self.diag.iter().any(|&d| d <= 0.0) {
            return None;
        }
        let inv_diag: Vec<f64> = self.diag.iter().map(|&d| 1.0 / d).collect();

        let mut x = vec![0.0; self.n];
        let mut r = b.to_vec();
        let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
        let mut p = z.clone();
        let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let mut ap = vec![0.0; self.n];

        for _ in 0..max_iter {
            self.multiply(&p, &mut ap);
            let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if pap <= 0.0 {
                return None;
            }
            let alpha = rz / pap;
            for i in 0..self.n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let r_norm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
            if r_norm / b_norm < tol {
                return Some(x);
            }
            for i in 0..self.n {
                z[i] = r[i] * inv_diag[i];
            }
            let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let beta = rz_new / rz;
            rz = rz_new;
            for i in 0..self.n {
                p[i] = z[i] + beta * p[i];
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_node_system() {
        let mut b = SpdBuilder::new(1);
        b.stamp(Some(0), None, 0.5); // 2 Ω to ground
        let a = b.build();
        let x = a.solve_cg(&[1.0e-3], 1e-12, 100).unwrap();
        assert!((x[0] - 2.0e-3).abs() < 1e-12); // 1 mA × 2 Ω
    }

    #[test]
    fn ladder_matches_hand_solution() {
        // gnd —1Ω— n0 —1Ω— n1 —1Ω— n2, inject 1 A at n2:
        // v2 = 3 V, v1 = 2 V, v0 = 1 V.
        let mut b = SpdBuilder::new(3);
        b.stamp(Some(0), None, 1.0);
        b.stamp(Some(0), Some(1), 1.0);
        b.stamp(Some(1), Some(2), 1.0);
        let a = b.build();
        let x = a.solve_cg(&[0.0, 0.0, 1.0], 1e-12, 1000).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 2.0).abs() < 1e-9);
        assert!((x[2] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_stamps_accumulate() {
        let mut b = SpdBuilder::new(2);
        b.stamp(Some(0), Some(1), 1.0);
        b.stamp(Some(0), Some(1), 1.0); // 2 S total
        b.stamp(Some(1), None, 1.0);
        let a = b.build();
        let x = a.solve_cg(&[1.0, 0.0], 1e-12, 100).unwrap();
        // i=1A into n0: v0 − v1 = 0.5, v1 = 1.0 ⇒ v0 = 1.5.
        assert!((x[0] - 1.5).abs() < 1e-9, "x = {x:?}");
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn floating_system_returns_none() {
        let mut b = SpdBuilder::new(2);
        b.stamp(Some(0), Some(1), 1.0); // nothing to ground
        let a = b.build();
        // Net current into a floating network: inconsistent singular
        // system, CG cannot converge.
        assert!(a.solve_cg(&[1.0, 0.0], 1e-10, 100).is_none());
    }

    #[test]
    fn zero_rhs_is_zero_solution() {
        let mut b = SpdBuilder::new(2);
        b.stamp(Some(0), Some(1), 1.0);
        b.stamp(Some(1), None, 1.0);
        let a = b.build();
        assert_eq!(a.solve_cg(&[0.0, 0.0], 1e-10, 10).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn large_grid_converges_and_satisfies_kcl() {
        // 40×40 mesh of 1 Ω segments, grounded at one corner, 1 mA injected
        // at the opposite corner.
        let n = 40;
        let idx = |r: usize, c: usize| r * n + c;
        let mut b = SpdBuilder::new(n * n);
        for r in 0..n {
            for c in 0..n {
                if c + 1 < n {
                    b.stamp(Some(idx(r, c)), Some(idx(r, c + 1)), 1.0);
                }
                if r + 1 < n {
                    b.stamp(Some(idx(r, c)), Some(idx(r + 1, c)), 1.0);
                }
            }
        }
        b.stamp(Some(0), None, 1.0e3); // strong ground at corner
        let a = b.build();
        let mut rhs = vec![0.0; n * n];
        rhs[n * n - 1] = 1.0e-3;
        let x = a.solve_cg(&rhs, 1e-10, 10_000).expect("CG must converge");
        // Residual check.
        let mut ax = vec![0.0; n * n];
        a.multiply(&x, &mut ax);
        let res: f64 = ax
            .iter()
            .zip(&rhs)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(res < 1e-9, "residual {res}");
        // Monotone potential from ground corner to injection corner.
        assert!(x[n * n - 1] > x[0]);
    }
}
