//! Two-layer resistive PDN mesh (the paper's Fig. 11 stack, collapsed to
//! its EM-relevant essentials).
//!
//! * a **local grid**: a fine `rows × cols` mesh in thin lower metal —
//!   "most EM-sensitive" in the paper's words;
//! * a **global grid**: coarse stripes in the thick top metals, one global
//!   node every `global_pitch` local nodes, fed by C4 bumps;
//! * **vias** connecting each global node down to the local mesh.
//!
//! Loads draw current from local nodes; the solver computes the IR-drop
//! field and every branch current, which [`crate::hazard`] converts into
//! per-layer EM current densities.

use dh_units::CurrentDensity;

use crate::solver::SpdBuilder;

/// Which physical layer class a branch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerClass {
    /// Thin lower-metal local grid segment.
    Local,
    /// Thick top-metal global grid segment.
    Global,
    /// Via stack between global and local grids.
    Via,
    /// C4 bump connection.
    Bump,
}

impl core::fmt::Display for LayerClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Local => write!(f, "local"),
            Self::Global => write!(f, "global"),
            Self::Via => write!(f, "via"),
            Self::Bump => write!(f, "bump"),
        }
    }
}

/// PDN mesh configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdnConfig {
    /// Local-mesh rows.
    pub rows: usize,
    /// Local-mesh columns.
    pub cols: usize,
    /// One global node per `global_pitch` local nodes in each direction.
    pub global_pitch: usize,
    /// Local segment resistance, ohms.
    pub r_local: f64,
    /// Global segment resistance, ohms.
    pub r_global: f64,
    /// Via-stack resistance, ohms.
    pub r_via: f64,
    /// C4 bump resistance, ohms.
    pub r_bump: f64,
    /// Local wire cross-section, m² (EM current density basis).
    pub local_area_m2: f64,
    /// Global wire cross-section, m².
    pub global_area_m2: f64,
}

impl PdnConfig {
    /// A representative chip: 24×24 local mesh, global stripes every 6
    /// nodes, four C4 bumps; thin 0.4 µm × 0.35 µm local wires under
    /// 10 µm × 2 µm global wires.
    pub fn default_chip() -> Self {
        Self {
            rows: 24,
            cols: 24,
            global_pitch: 6,
            r_local: 0.8,
            r_global: 0.05,
            r_via: 0.5,
            r_bump: 0.01,
            local_area_m2: 0.4e-6 * 0.35e-6,
            global_area_m2: 10.0e-6 * 2.0e-6,
        }
    }

    /// Number of local nodes.
    pub fn local_nodes(&self) -> usize {
        self.rows * self.cols
    }

    fn global_rows(&self) -> usize {
        self.rows.div_ceil(self.global_pitch)
    }

    fn global_cols(&self) -> usize {
        self.cols.div_ceil(self.global_pitch)
    }

    /// Number of global nodes.
    pub fn global_nodes(&self) -> usize {
        self.global_rows() * self.global_cols()
    }
}

/// One solved branch of the PDN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Branch {
    /// Layer class of the branch.
    pub layer: LayerClass,
    /// Node indices (into the combined node vector) the branch connects.
    pub nodes: (usize, usize),
    /// Branch current magnitude, amperes.
    pub current_a: f64,
    /// EM current density through the branch cross-section.
    pub density: CurrentDensity,
}

/// A solved PDN operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct PdnSolution {
    /// IR drop (volts below the bump supply) at every local node.
    pub local_drops_v: Vec<f64>,
    /// The worst IR drop across the local mesh, volts.
    pub worst_ir_drop_v: f64,
    /// Every branch with its current and density.
    pub branches: Vec<Branch>,
}

impl PdnSolution {
    /// The highest branch current density in a layer class.
    pub fn peak_density(&self, layer: LayerClass) -> CurrentDensity {
        self.branches
            .iter()
            .filter(|b| b.layer == layer)
            .map(|b| b.density)
            .fold(CurrentDensity::ZERO, CurrentDensity::max)
    }
}

/// The PDN mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct PdnMesh {
    config: PdnConfig,
    /// Bump positions as global-node indices.
    bumps: Vec<usize>,
}

/// Error from PDN construction or solving.
#[derive(Debug, Clone, PartialEq)]
pub enum PdnError {
    /// Configuration is degenerate.
    InvalidConfig(String),
    /// The load vector length does not match the local node count.
    LoadLengthMismatch {
        /// Expected length (local node count).
        expected: usize,
        /// Supplied length.
        got: usize,
    },
    /// The CG solve failed to converge (floating network).
    SolveFailed,
}

impl core::fmt::Display for PdnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidConfig(why) => write!(f, "invalid PDN config: {why}"),
            Self::LoadLengthMismatch { expected, got } => {
                write!(
                    f,
                    "load vector length {got} does not match local node count {expected}"
                )
            }
            Self::SolveFailed => write!(f, "PDN solve failed to converge"),
        }
    }
}

impl std::error::Error for PdnError {}

impl PdnMesh {
    /// Builds a mesh with four C4 bumps at the quarter positions of the
    /// global grid.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidConfig`] for zero dimensions, a pitch of
    /// zero, or non-positive resistances/areas.
    pub fn new(config: PdnConfig) -> Result<Self, PdnError> {
        if config.rows < 2 || config.cols < 2 {
            return Err(PdnError::InvalidConfig("mesh must be at least 2x2".into()));
        }
        if config.global_pitch == 0 {
            return Err(PdnError::InvalidConfig("global pitch must be >= 1".into()));
        }
        for (name, v) in [
            ("r_local", config.r_local),
            ("r_global", config.r_global),
            ("r_via", config.r_via),
            ("r_bump", config.r_bump),
            ("local area", config.local_area_m2),
            ("global area", config.global_area_m2),
        ] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(PdnError::InvalidConfig(format!(
                    "{name} must be positive, got {v}"
                )));
            }
        }
        let gr = config.global_rows();
        let gc = config.global_cols();
        let quarter = |n: usize| (n / 4).min(n - 1);
        let three_quarter = |n: usize| (3 * n / 4).min(n - 1);
        let bumps = vec![
            quarter(gr) * gc + quarter(gc),
            quarter(gr) * gc + three_quarter(gc),
            three_quarter(gr) * gc + quarter(gc),
            three_quarter(gr) * gc + three_quarter(gc),
        ];
        Ok(Self { config, bumps })
    }

    /// The configuration.
    pub fn config(&self) -> &PdnConfig {
        &self.config
    }

    /// Solves with the same load current (amperes) at every local node.
    ///
    /// # Errors
    ///
    /// See [`PdnMesh::solve`].
    pub fn solve_uniform_load(&self, per_node_a: f64) -> Result<PdnSolution, PdnError> {
        self.solve(&vec![per_node_a; self.config.local_nodes()])
    }

    /// Solves the IR-drop system for per-local-node load currents.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::LoadLengthMismatch`] for a wrong-sized load
    /// vector or [`PdnError::SolveFailed`] if CG does not converge.
    pub fn solve(&self, loads_a: &[f64]) -> Result<PdnSolution, PdnError> {
        self.solve_with_local_scale(loads_a, 1.0)
    }

    /// Like [`PdnMesh::solve`], but with every *local-grid* segment
    /// resistance multiplied by `local_r_scale` — the soft-EM-wearout
    /// degradation knob used by [`crate::wear_loop`].
    ///
    /// # Errors
    ///
    /// As for [`PdnMesh::solve`]; additionally rejects a non-positive
    /// scale.
    pub fn solve_with_local_scale(
        &self,
        loads_a: &[f64],
        local_r_scale: f64,
    ) -> Result<PdnSolution, PdnError> {
        if !(local_r_scale > 0.0) || !local_r_scale.is_finite() {
            return Err(PdnError::InvalidConfig(format!(
                "local resistance scale must be positive, got {local_r_scale}"
            )));
        }
        let c = &self.config;
        let nl = c.local_nodes();
        if loads_a.len() != nl {
            return Err(PdnError::LoadLengthMismatch {
                expected: nl,
                got: loads_a.len(),
            });
        }
        let gc = c.global_cols();
        let n_total = nl + c.global_nodes();
        let local_idx = |r: usize, col: usize| r * c.cols + col;
        let global_idx = |r: usize, col: usize| nl + r * gc + col;

        // Assemble: solve for the *drop* field (bumps are the reference).
        let mut builder = SpdBuilder::new(n_total);
        struct Edge {
            a: usize,
            b: usize,
            g: f64,
            layer: LayerClass,
            area: f64,
        }
        let mut edges = Vec::new();
        for r in 0..c.rows {
            for col in 0..c.cols {
                let i = local_idx(r, col);
                if col + 1 < c.cols {
                    edges.push(Edge {
                        a: i,
                        b: local_idx(r, col + 1),
                        g: 1.0 / (c.r_local * local_r_scale),
                        layer: LayerClass::Local,
                        area: c.local_area_m2,
                    });
                }
                if r + 1 < c.rows {
                    edges.push(Edge {
                        a: i,
                        b: local_idx(r + 1, col),
                        g: 1.0 / (c.r_local * local_r_scale),
                        layer: LayerClass::Local,
                        area: c.local_area_m2,
                    });
                }
            }
        }
        for gr_i in 0..c.global_rows() {
            for gcol in 0..gc {
                let gi = global_idx(gr_i, gcol);
                if gcol + 1 < gc {
                    edges.push(Edge {
                        a: gi,
                        b: global_idx(gr_i, gcol + 1),
                        g: 1.0 / c.r_global,
                        layer: LayerClass::Global,
                        area: c.global_area_m2,
                    });
                }
                if gr_i + 1 < c.global_rows() {
                    edges.push(Edge {
                        a: gi,
                        b: global_idx(gr_i + 1, gcol),
                        g: 1.0 / c.r_global,
                        layer: LayerClass::Global,
                        area: c.global_area_m2,
                    });
                }
                // Via down to the local mesh.
                let lr = (gr_i * c.global_pitch).min(c.rows - 1);
                let lc = (gcol * c.global_pitch).min(c.cols - 1);
                edges.push(Edge {
                    a: gi,
                    b: local_idx(lr, lc),
                    g: 1.0 / c.r_via,
                    layer: LayerClass::Via,
                    area: c.global_area_m2,
                });
            }
        }
        for e in &edges {
            builder.stamp(Some(e.a), Some(e.b), e.g);
        }
        // Bumps ground the drop system.
        for &b in &self.bumps {
            builder.stamp(Some(nl + b), None, 1.0 / c.r_bump);
        }
        let matrix = builder.build();
        let mut rhs = vec![0.0; n_total];
        rhs[..nl].copy_from_slice(loads_a);
        let drops = matrix
            .solve_cg(&rhs, 1e-10, 20_000)
            .ok_or(PdnError::SolveFailed)?;

        let mut branches: Vec<Branch> = edges
            .iter()
            .map(|e| {
                let i = ((drops[e.a] - drops[e.b]) * e.g).abs();
                Branch {
                    layer: e.layer,
                    nodes: (e.a, e.b),
                    current_a: i,
                    density: CurrentDensity::new(i / e.area),
                }
            })
            .collect();
        for (k, &b) in self.bumps.iter().enumerate() {
            let i = (drops[nl + b] / c.r_bump).abs();
            branches.push(Branch {
                layer: LayerClass::Bump,
                nodes: (nl + b, usize::MAX - k),
                current_a: i,
                density: CurrentDensity::new(i / c.global_area_m2),
            });
        }

        let local_drops_v = drops[..nl].to_vec();
        let worst = local_drops_v.iter().copied().fold(0.0, f64::max);
        Ok(PdnSolution {
            local_drops_v,
            worst_ir_drop_v: worst,
            branches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> PdnMesh {
        PdnMesh::new(PdnConfig::default_chip()).unwrap()
    }

    #[test]
    fn uniform_load_solves_with_reasonable_ir_drop() {
        let sol = mesh().solve_uniform_load(0.25e-3).unwrap();
        assert!(sol.worst_ir_drop_v > 1e-4, "drop {}", sol.worst_ir_drop_v);
        assert!(sol.worst_ir_drop_v < 0.1, "drop {}", sol.worst_ir_drop_v);
        assert_eq!(sol.local_drops_v.len(), 576);
    }

    #[test]
    fn no_load_no_drop() {
        let sol = mesh().solve_uniform_load(0.0).unwrap();
        assert_eq!(sol.worst_ir_drop_v, 0.0);
        assert!(sol.branches.iter().all(|b| b.current_a == 0.0));
    }

    #[test]
    fn local_grid_sees_higher_current_density_than_global() {
        // The paper's Fig. 11 point: local grids are the EM-sensitive ones.
        let sol = mesh().solve_uniform_load(0.25e-3).unwrap();
        let local = sol.peak_density(LayerClass::Local);
        let global = sol.peak_density(LayerClass::Global);
        assert!(
            local > global * 2.0,
            "local {:.3} vs global {:.3} MA/cm²",
            local.as_ma_per_cm2(),
            global.as_ma_per_cm2()
        );
        // Local density reaches the EM-concern regime (~1 MA/cm² scale).
        assert!(
            local.as_ma_per_cm2() > 0.2,
            "local = {} MA/cm²",
            local.as_ma_per_cm2()
        );
    }

    #[test]
    fn drop_scales_linearly_with_load() {
        let m = mesh();
        let a = m.solve_uniform_load(0.1e-3).unwrap();
        let b = m.solve_uniform_load(0.2e-3).unwrap();
        assert!((b.worst_ir_drop_v / a.worst_ir_drop_v - 2.0).abs() < 1e-6);
    }

    #[test]
    fn hotspot_load_localizes_the_drop() {
        let m = mesh();
        let c = m.config();
        let mut loads = vec![0.05e-3; c.local_nodes()];
        // A hotspot at the mesh centre.
        let hot = (c.rows / 2) * c.cols + c.cols / 2;
        loads[hot] = 5.0e-3;
        let sol = m.solve(&loads).unwrap();
        let baseline = m.solve(&vec![0.05e-3; c.local_nodes()]).unwrap();
        let hot_drop = sol.local_drops_v[hot];
        // The hotspot node's drop rises well above its uniform-load value,
        // and far-away nodes barely notice.
        assert!(
            hot_drop > 2.0 * baseline.local_drops_v[hot],
            "hotspot {hot_drop} vs baseline {}",
            baseline.local_drops_v[hot]
        );
        let far = sol.local_drops_v[0] / baseline.local_drops_v[0];
        assert!(far < 1.5, "far corner rose {far}×");
        assert!(sol.worst_ir_drop_v >= hot_drop);
    }

    #[test]
    fn total_bump_current_matches_total_load() {
        let m = mesh();
        let per_node = 0.25e-3;
        let sol = m.solve_uniform_load(per_node).unwrap();
        let bump_total: f64 = sol
            .branches
            .iter()
            .filter(|b| b.layer == LayerClass::Bump)
            .map(|b| b.current_a)
            .sum();
        let load_total = per_node * m.config().local_nodes() as f64;
        assert!(
            (bump_total - load_total).abs() / load_total < 1e-6,
            "bumps {bump_total} vs loads {load_total}"
        );
    }

    #[test]
    fn config_validation() {
        let mut c = PdnConfig::default_chip();
        c.rows = 1;
        assert!(PdnMesh::new(c).is_err());
        let mut c = PdnConfig::default_chip();
        c.global_pitch = 0;
        assert!(PdnMesh::new(c).is_err());
        let mut c = PdnConfig::default_chip();
        c.r_local = 0.0;
        assert!(PdnMesh::new(c).is_err());
    }

    #[test]
    fn wrong_load_length_is_rejected() {
        let m = mesh();
        assert!(matches!(
            m.solve(&[0.0; 3]),
            Err(PdnError::LoadLengthMismatch {
                expected: 576,
                got: 3
            })
        ));
    }
}
