//! The physical metal stack of the paper's Fig. 11: a ten-layer tower from
//! C4 bump down to the logic, with the assist circuitry inserted between
//! the global and local grids.
//!
//! Fig. 11 makes a geometric argument: the global PDN lives in the top one
//! or two metals, "wide and thick, thus being relatively robust against
//! EM", while the local VDD/GND grids "use the lower metal layers" and are
//! "more EM sensitive". This module models that stack quantitatively —
//! per-layer wire geometry, the current each layer carries for a given
//! load, and the resulting EM stress — and locates the assist circuitry's
//! insertion point.

use dh_units::{Amperes, CurrentDensity};

use crate::grid::PdnError;

/// The role a metal layer plays in the PDN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerRole {
    /// Thick top-layer global distribution (fed by C4 bumps).
    GlobalGrid,
    /// Intermediate distribution / via farms.
    Intermediate,
    /// Thin local VDD/VSS rails feeding standard cells.
    LocalGrid,
}

impl core::fmt::Display for LayerRole {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::GlobalGrid => write!(f, "global"),
            Self::Intermediate => write!(f, "intermediate"),
            Self::LocalGrid => write!(f, "local"),
        }
    }
}

/// One metal layer of the tower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetalLayer {
    /// Layer name (M1 … M10).
    pub name: &'static str,
    /// Role in the PDN.
    pub role: LayerRole,
    /// Power-wire width on this layer, metres.
    pub wire_width_m: f64,
    /// Metal thickness, metres.
    pub thickness_m: f64,
    /// How many parallel power wires of this layer share the tile current.
    pub parallel_wires: usize,
}

impl MetalLayer {
    /// Cross-section of one wire, m².
    pub fn wire_area_m2(&self) -> f64 {
        self.wire_width_m * self.thickness_m
    }

    /// Current density in each wire when the layer carries `total` current.
    pub fn density_for(&self, total: Amperes) -> CurrentDensity {
        CurrentDensity::new(total.value() / (self.parallel_wires as f64 * self.wire_area_m2()))
    }
}

/// The full Fig. 11 tower.
#[derive(Debug, Clone, PartialEq)]
pub struct Tower {
    layers: Vec<MetalLayer>,
    /// Index of the layer *above* which the assist circuitry sits: layers
    /// below it (local grids) are the ones it protects.
    assist_boundary: usize,
}

impl Tower {
    /// The paper's 10-metal-layer example: M10/M9 global (wide, thick),
    /// M8–M5 intermediate, M4–M1 local (narrow, thin). The assist
    /// circuitry sits between the global and local grids (one more layer of
    /// header/footer on top of a conventional power-gated PDN).
    pub fn ten_layer() -> Self {
        let layers = vec![
            MetalLayer {
                name: "M10",
                role: LayerRole::GlobalGrid,
                wire_width_m: 12.0e-6,
                thickness_m: 3.0e-6,
                parallel_wires: 10,
            },
            MetalLayer {
                name: "M9",
                role: LayerRole::GlobalGrid,
                wire_width_m: 10.0e-6,
                thickness_m: 2.0e-6,
                parallel_wires: 12,
            },
            MetalLayer {
                name: "M8",
                role: LayerRole::Intermediate,
                wire_width_m: 2.0e-6,
                thickness_m: 0.9e-6,
                parallel_wires: 48,
            },
            MetalLayer {
                name: "M7",
                role: LayerRole::Intermediate,
                wire_width_m: 1.6e-6,
                thickness_m: 0.9e-6,
                parallel_wires: 48,
            },
            MetalLayer {
                name: "M6",
                role: LayerRole::Intermediate,
                wire_width_m: 1.2e-6,
                thickness_m: 0.8e-6,
                parallel_wires: 64,
            },
            MetalLayer {
                name: "M5",
                role: LayerRole::Intermediate,
                wire_width_m: 0.8e-6,
                thickness_m: 0.5e-6,
                parallel_wires: 96,
            },
            MetalLayer {
                name: "M4",
                role: LayerRole::LocalGrid,
                wire_width_m: 0.5e-6,
                thickness_m: 0.35e-6,
                parallel_wires: 192,
            },
            MetalLayer {
                name: "M3",
                role: LayerRole::LocalGrid,
                wire_width_m: 0.4e-6,
                thickness_m: 0.3e-6,
                parallel_wires: 256,
            },
            MetalLayer {
                name: "M2",
                role: LayerRole::LocalGrid,
                wire_width_m: 0.3e-6,
                thickness_m: 0.22e-6,
                parallel_wires: 384,
            },
            MetalLayer {
                name: "M1",
                role: LayerRole::LocalGrid,
                wire_width_m: 0.25e-6,
                thickness_m: 0.18e-6,
                parallel_wires: 512,
            },
        ];
        Self {
            layers,
            assist_boundary: 6,
        }
    }

    /// The layers, top (bump side) first.
    pub fn layers(&self) -> &[MetalLayer] {
        &self.layers
    }

    /// The layers the assist circuitry protects (local grids below the
    /// header/footer insertion point).
    pub fn protected_layers(&self) -> &[MetalLayer] {
        &self.layers[self.assist_boundary..]
    }

    /// Per-layer current densities when a tile draws `tile_current` through
    /// the tower. Every layer carries the full tile current (it flows
    /// through the stack), split across that layer's parallel wires.
    pub fn density_profile(&self, tile_current: Amperes) -> Vec<(&'static str, CurrentDensity)> {
        self.layers
            .iter()
            .map(|l| (l.name, l.density_for(tile_current)))
            .collect()
    }

    /// The most EM-stressed layer for a tile current.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidConfig`] if the tower has no layers
    /// (cannot happen for the built-in tower).
    pub fn most_stressed(&self, tile_current: Amperes) -> Result<&MetalLayer, PdnError> {
        self.layers
            .iter()
            .max_by(|a, b| {
                a.density_for(tile_current)
                    .value()
                    .total_cmp(&b.density_for(tile_current).value())
            })
            .ok_or_else(|| PdnError::InvalidConfig("tower has no layers".into()))
    }

    /// The ratio of the worst local-grid density to the worst global-grid
    /// density — the Fig. 11 sensitivity gap.
    pub fn local_to_global_stress_ratio(&self, tile_current: Amperes) -> f64 {
        let worst = |role: LayerRole| {
            self.layers
                .iter()
                .filter(|l| l.role == role)
                .map(|l| l.density_for(tile_current).value())
                .fold(0.0, f64::max)
        };
        worst(LayerRole::LocalGrid) / worst(LayerRole::GlobalGrid).max(f64::MIN_POSITIVE)
    }
}

impl Default for Tower {
    fn default() -> Self {
        Self::ten_layer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amp() -> Amperes {
        Amperes::new(1.0) // 1 A tile block
    }

    #[test]
    fn ten_layers_in_order() {
        let t = Tower::ten_layer();
        assert_eq!(t.layers().len(), 10);
        assert_eq!(t.layers()[0].name, "M10");
        assert_eq!(t.layers()[9].name, "M1");
    }

    #[test]
    fn local_layers_are_the_em_hazard() {
        let t = Tower::ten_layer();
        let worst = t.most_stressed(amp()).unwrap();
        assert_eq!(
            worst.role,
            LayerRole::LocalGrid,
            "worst layer {}",
            worst.name
        );
        // Fig. 11's gap: local grids see an order of magnitude more stress.
        let ratio = t.local_to_global_stress_ratio(amp());
        assert!(ratio > 10.0, "local/global stress ratio {ratio}");
    }

    #[test]
    fn density_decreases_monotonically_toward_the_top() {
        // Wider+thicker+more-parallel wires up the stack: per-wire current
        // density must not increase from M1 to M10.
        let t = Tower::ten_layer();
        let profile = t.density_profile(amp());
        for pair in profile.windows(2) {
            assert!(
                pair[0].1 <= pair[1].1 * 1.6,
                "{} ({}) should be ≲ {} ({})",
                pair[0].0,
                pair[0].1.as_ma_per_cm2(),
                pair[1].0,
                pair[1].1.as_ma_per_cm2()
            );
        }
        // Extremes: M1 vastly worse than M10.
        assert!(profile[9].1 > profile[0].1 * 10.0);
    }

    #[test]
    fn assist_protects_exactly_the_local_grids() {
        let t = Tower::ten_layer();
        let protected = t.protected_layers();
        assert_eq!(protected.len(), 4);
        assert!(protected.iter().all(|l| l.role == LayerRole::LocalGrid));
    }

    #[test]
    fn realistic_density_scale() {
        // A 1 A tile through M1: some MA/cm² — the EM-concern regime.
        let t = Tower::ten_layer();
        let m1 = t.layers().last().unwrap();
        let j = m1.density_for(amp());
        assert!(
            j.as_ma_per_cm2() > 0.1 && j.as_ma_per_cm2() < 10.0,
            "M1 density {} MA/cm²",
            j.as_ma_per_cm2()
        );
    }
}
