//! The structured record of everything a supervised run survived.

use core::fmt;

/// FNV-1a 64-bit offset basis (kept local: this crate sits below the
/// fleet wire module on purpose).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fnv1a_u64(hash: u64, v: u64) -> u64 {
    fnv1a(hash, &v.to_le_bytes())
}

/// The ways an aging sensor misbehaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFaultKind {
    /// The reading latches at its current value and never moves again
    /// (a ring-oscillator monitor that stopped toggling).
    Stuck,
    /// The reading goes away entirely (dead monitor, no sample).
    Dropped,
    /// The reading is still live but its noise is amplified by this
    /// factor.
    Noisy(f64),
}

impl SensorFaultKind {
    /// Stable wire discriminant (checkpoints persist incidents).
    pub fn discriminant(self) -> u8 {
        match self {
            Self::Stuck => 0,
            Self::Dropped => 1,
            Self::Noisy(_) => 2,
        }
    }

    /// The noise-amplification payload (0 for the other kinds).
    pub fn payload(self) -> f64 {
        match self {
            Self::Noisy(factor) => factor,
            _ => 0.0,
        }
    }

    /// Rebuilds a kind from its wire pair. Returns `None` for an
    /// unknown discriminant.
    pub fn from_wire(discriminant: u8, payload: f64) -> Option<Self> {
        match discriminant {
            0 => Some(Self::Stuck),
            1 => Some(Self::Dropped),
            2 => Some(Self::Noisy(payload)),
            _ => None,
        }
    }
}

impl fmt::Display for SensorFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Stuck => write!(f, "stuck"),
            Self::Dropped => write!(f, "dropped"),
            Self::Noisy(factor) => write!(f, "noisy(x{factor})"),
        }
    }
}

/// The ways a checkpoint write can fail at the disk layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// The write failed with ENOSPC: nothing reached the disk and the
    /// previous generation survives.
    Enospc,
    /// Only a prefix of the file reached the disk (power loss mid-write
    /// with no fsync barrier).
    TornWrite,
    /// The post-write fsync failed: the temp file is abandoned and the
    /// previous generation survives.
    FsyncFail,
    /// The write stalled long enough to trip slow-disk watchdogs but
    /// eventually completed intact.
    SlowWrite,
}

impl DiskFaultKind {
    /// Stable wire discriminant (checkpoints persist incidents).
    pub fn discriminant(self) -> u8 {
        match self {
            Self::Enospc => 0,
            Self::TornWrite => 1,
            Self::FsyncFail => 2,
            Self::SlowWrite => 3,
        }
    }

    /// Rebuilds a kind from its wire discriminant. Returns `None` for
    /// an unknown discriminant.
    pub fn from_wire(discriminant: u8) -> Option<Self> {
        match discriminant {
            0 => Some(Self::Enospc),
            1 => Some(Self::TornWrite),
            2 => Some(Self::FsyncFail),
            3 => Some(Self::SlowWrite),
            _ => None,
        }
    }
}

impl fmt::Display for DiskFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Enospc => write!(f, "enospc"),
            Self::TornWrite => write!(f, "torn write"),
            Self::FsyncFail => write!(f, "fsync failed"),
            Self::SlowWrite => write!(f, "slow write"),
        }
    }
}

/// A checkpoint write that hit a disk fault and was contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskIncident {
    /// What the disk did.
    pub kind: DiskFaultKind,
    /// Which write (0-based, counted per process invocation) it hit.
    pub write_index: u64,
}

/// A shard that exhausted its retry budget and was quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFailure {
    /// The shard's index in the run.
    pub shard: u64,
    /// How many attempts were made before giving up.
    pub attempts: u32,
    /// The panic (or error) message from the final attempt.
    pub error: String,
}

/// A sensor the simulation detected as bad and stopped trusting.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorIncident {
    /// Global chip (fleet layer) or core (sched layer) index.
    pub chip: u64,
    /// What the sensor was doing.
    pub kind: SensorFaultKind,
    /// The epoch at which staleness detection flagged it.
    pub epoch: u64,
}

/// A checkpoint generation that failed validation during resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointFallback {
    /// Which generation was skipped (0 = newest).
    pub generation: u64,
    /// Why it was rejected.
    pub reason: String,
}

/// What a supervised run survived: quarantined shards, retries that
/// eventually succeeded, rejected non-finite samples, distrusted
/// sensors, and checkpoint generations that were skipped during resume.
///
/// An all-empty report (`!is_degraded()`) certifies the run took every
/// fast path and its fleet aggregate is bit-identical to an
/// unsupervised run of the same config.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradedReport {
    /// Shards dropped from the aggregate after exhausting retries.
    pub quarantined: Vec<ShardFailure>,
    /// Task attempts that panicked and were re-executed (whether or not
    /// the shard eventually succeeded).
    pub retries: u64,
    /// Chip samples rejected by the non-finite guards.
    pub rejected_samples: u64,
    /// Sensors flagged by staleness detection and degraded to the
    /// conservative policy.
    pub sensor_incidents: Vec<SensorIncident>,
    /// Checkpoint generations skipped on resume.
    pub checkpoint_fallbacks: Vec<CheckpointFallback>,
    /// Checkpoint writes that hit a disk fault and were contained
    /// (previous generation kept, retention trimmed, or write torn and
    /// left for resume-time fallback).
    pub disk_incidents: Vec<DiskIncident>,
    /// Old checkpoint generations deleted to relieve disk pressure.
    pub retention_trims: u64,
}

impl DegradedReport {
    /// True when anything at all went wrong (or was injected).
    pub fn is_degraded(&self) -> bool {
        !self.quarantined.is_empty()
            || self.retries > 0
            || self.rejected_samples > 0
            || !self.sensor_incidents.is_empty()
            || !self.checkpoint_fallbacks.is_empty()
            || !self.disk_incidents.is_empty()
            || self.retention_trims > 0
    }

    /// Folds another report into this one (used when a resumed run
    /// merges the persisted degraded state with fresh incidents).
    pub fn absorb(&mut self, other: DegradedReport) {
        self.quarantined.extend(other.quarantined);
        self.retries += other.retries;
        self.rejected_samples += other.rejected_samples;
        self.sensor_incidents.extend(other.sensor_incidents);
        self.checkpoint_fallbacks.extend(other.checkpoint_fallbacks);
        self.disk_incidents.extend(other.disk_incidents);
        self.retention_trims += other.retention_trims;
    }

    /// A stable FNV-1a fingerprint over every field — the golden value
    /// the CI chaos job pins. Strings hash by their bytes, floats by
    /// their bit patterns, so equal fingerprints mean equal reports.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, b"dh-degraded-report-v1");
        h = fnv1a_u64(h, self.quarantined.len() as u64);
        for q in &self.quarantined {
            h = fnv1a_u64(h, q.shard);
            h = fnv1a_u64(h, u64::from(q.attempts));
            h = fnv1a(h, q.error.as_bytes());
        }
        h = fnv1a_u64(h, self.retries);
        h = fnv1a_u64(h, self.rejected_samples);
        h = fnv1a_u64(h, self.sensor_incidents.len() as u64);
        for s in &self.sensor_incidents {
            h = fnv1a_u64(h, s.chip);
            h = fnv1a_u64(h, u64::from(s.kind.discriminant()));
            h = fnv1a_u64(h, s.kind.payload().to_bits());
            h = fnv1a_u64(h, s.epoch);
        }
        h = fnv1a_u64(h, self.checkpoint_fallbacks.len() as u64);
        for c in &self.checkpoint_fallbacks {
            h = fnv1a_u64(h, c.generation);
            h = fnv1a(h, c.reason.as_bytes());
        }
        h = fnv1a_u64(h, self.disk_incidents.len() as u64);
        for d in &self.disk_incidents {
            h = fnv1a_u64(h, u64::from(d.kind.discriminant()));
            h = fnv1a_u64(h, d.write_index);
        }
        h = fnv1a_u64(h, self.retention_trims);
        h
    }

    /// Renders the report as the human-readable block the bench CLI and
    /// chaos CI print.
    pub fn render(&self) -> String {
        if !self.is_degraded() {
            return "degraded report: clean run (no faults observed)".to_string();
        }
        let mut out = String::from("degraded report:\n");
        out.push_str(&format!(
            "  quarantined shards : {}\n",
            self.quarantined.len()
        ));
        for q in &self.quarantined {
            out.push_str(&format!(
                "    shard {:>6}  after {} attempts: {}\n",
                q.shard, q.attempts, q.error
            ));
        }
        out.push_str(&format!("  retried attempts   : {}\n", self.retries));
        out.push_str(&format!(
            "  rejected samples   : {}\n",
            self.rejected_samples
        ));
        out.push_str(&format!(
            "  sensor incidents   : {}\n",
            self.sensor_incidents.len()
        ));
        for s in &self.sensor_incidents {
            out.push_str(&format!(
                "    chip {:>7}  {} (flagged at epoch {})\n",
                s.chip, s.kind, s.epoch
            ));
        }
        out.push_str(&format!(
            "  ckpt fallbacks     : {}\n",
            self.checkpoint_fallbacks.len()
        ));
        for c in &self.checkpoint_fallbacks {
            out.push_str(&format!("    generation {}  {}\n", c.generation, c.reason));
        }
        out.push_str(&format!(
            "  disk incidents     : {}\n",
            self.disk_incidents.len()
        ));
        for d in &self.disk_incidents {
            out.push_str(&format!("    write {:>6}  {}\n", d.write_index, d.kind));
        }
        out.push_str(&format!(
            "  retention trims    : {}\n",
            self.retention_trims
        ));
        out.push_str(&format!(
            "  fingerprint        : {:#018x}",
            self.fingerprint()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DegradedReport {
        DegradedReport {
            quarantined: vec![ShardFailure {
                shard: 4,
                attempts: 3,
                error: "injected fault: shard 4".to_string(),
            }],
            retries: 2,
            rejected_samples: 1,
            sensor_incidents: vec![SensorIncident {
                chip: 11,
                kind: SensorFaultKind::Stuck,
                epoch: 9,
            }],
            checkpoint_fallbacks: vec![CheckpointFallback {
                generation: 0,
                reason: "checksum mismatch".to_string(),
            }],
            disk_incidents: vec![DiskIncident {
                kind: DiskFaultKind::Enospc,
                write_index: 6,
            }],
            retention_trims: 1,
        }
    }

    #[test]
    fn empty_report_is_clean() {
        let r = DegradedReport::default();
        assert!(!r.is_degraded());
        assert!(r.render().contains("clean run"));
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let base = sample();
        assert!(base.is_degraded());
        let mut variants = vec![base.clone()];
        let mut v = base.clone();
        v.quarantined[0].shard = 5;
        variants.push(v);
        let mut v = base.clone();
        v.retries = 3;
        variants.push(v);
        let mut v = base.clone();
        v.rejected_samples = 0;
        variants.push(v);
        let mut v = base.clone();
        v.sensor_incidents[0].kind = SensorFaultKind::Noisy(8.0);
        variants.push(v);
        let mut v = base.clone();
        v.checkpoint_fallbacks[0].reason = "bad magic".to_string();
        variants.push(v);
        let mut v = base.clone();
        v.disk_incidents[0].kind = DiskFaultKind::TornWrite;
        variants.push(v);
        let mut v = base.clone();
        v.retention_trims = 2;
        variants.push(v);
        let prints: Vec<u64> = variants.iter().map(DegradedReport::fingerprint).collect();
        for i in 0..prints.len() {
            for j in (i + 1)..prints.len() {
                assert_ne!(prints[i], prints[j], "variants {i} and {j} collide");
            }
        }
        assert_eq!(base.fingerprint(), sample().fingerprint());
    }

    #[test]
    fn absorb_merges_counts_and_lists() {
        let mut a = sample();
        a.absorb(sample());
        assert_eq!(a.quarantined.len(), 2);
        assert_eq!(a.retries, 4);
        assert_eq!(a.rejected_samples, 2);
        assert_eq!(a.sensor_incidents.len(), 2);
        assert_eq!(a.checkpoint_fallbacks.len(), 2);
        assert_eq!(a.disk_incidents.len(), 2);
        assert_eq!(a.retention_trims, 2);
    }

    #[test]
    fn disk_kind_wire_round_trips() {
        for kind in [
            DiskFaultKind::Enospc,
            DiskFaultKind::TornWrite,
            DiskFaultKind::FsyncFail,
            DiskFaultKind::SlowWrite,
        ] {
            assert_eq!(DiskFaultKind::from_wire(kind.discriminant()), Some(kind));
        }
        assert_eq!(DiskFaultKind::from_wire(9), None);
    }

    #[test]
    fn disk_only_report_is_degraded() {
        let r = DegradedReport {
            disk_incidents: vec![DiskIncident {
                kind: DiskFaultKind::FsyncFail,
                write_index: 0,
            }],
            ..DegradedReport::default()
        };
        assert!(r.is_degraded());
        assert!(r.render().contains("fsync failed"));
    }

    #[test]
    fn sensor_kind_wire_round_trips() {
        for kind in [
            SensorFaultKind::Stuck,
            SensorFaultKind::Dropped,
            SensorFaultKind::Noisy(8.0),
        ] {
            let back = SensorFaultKind::from_wire(kind.discriminant(), kind.payload())
                .expect("known discriminant");
            assert_eq!(back, kind);
        }
        assert_eq!(SensorFaultKind::from_wire(9, 0.0), None);
    }

    #[test]
    fn render_enumerates_incidents() {
        let text = sample().render();
        assert!(text.contains("shard      4"));
        assert!(text.contains("stuck"));
        assert!(text.contains("checksum mismatch"));
        assert!(text.contains("enospc"));
        assert!(text.contains("retention trims"));
        assert!(text.contains("fingerprint"));
    }
}
