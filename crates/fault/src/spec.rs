//! The compact `key=value` grammar naming a set of faults to inject.

use core::fmt;

/// A parse error from [`FaultSpec::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    /// An item was not of the form `key=value`.
    Malformed(String),
    /// The key is not one the injector understands.
    UnknownKey(String),
    /// The value did not parse as the type the key expects, or was out
    /// of range (probabilities must lie in `[0, 1]`).
    BadValue {
        /// The offending key.
        key: String,
        /// The raw value text.
        value: String,
    },
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Malformed(item) => write!(f, "fault spec item `{item}` is not key=value"),
            Self::UnknownKey(key) => write!(f, "unknown fault spec key `{key}`"),
            Self::BadValue { key, value } => {
                write!(f, "fault spec value `{value}` is invalid for key `{key}`")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// A declarative description of which faults to inject and how often.
///
/// Parsed from a spec string (see [`FaultSpec::parse`]); paired with a
/// seed it becomes a deterministic [`crate::FaultPlan`]. The default
/// spec injects nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability that a `(shard, attempt)` task panics mid-flight.
    pub panic_probability: f64,
    /// A shard index that panics on *every* attempt (guaranteed
    /// quarantine, regardless of retry budget).
    pub kill_shard: Option<u64>,
    /// Probability that a `(shard, attempt)` has one chip outcome
    /// poisoned with a non-finite guardband.
    pub poison_probability: f64,
    /// A global chip index whose outcome is poisoned on every attempt
    /// (guaranteed rejected sample — retries cannot outrun it).
    pub poison_chip: Option<u64>,
    /// Corrupt every Nth checkpoint write with a single bit flip
    /// (0 = never).
    pub checkpoint_flip_every: u64,
    /// Truncate every Nth checkpoint write (0 = never).
    pub checkpoint_truncate_every: u64,
    /// Probability that a chip (or core) sensor is stuck for the whole
    /// run.
    pub stuck_probability: f64,
    /// A chip/core index whose sensor is always stuck.
    pub stuck_chip: Option<u64>,
    /// Probability that a checkpoint write fails with ENOSPC (disk
    /// full): nothing is written and the previous generation survives.
    pub disk_full_probability: f64,
    /// Tear every Nth checkpoint write: only a prefix of the encoded
    /// file reaches the disk, as if the machine lost power mid-write
    /// (0 = never).
    pub disk_torn_every: u64,
    /// Probability that the fsync after a checkpoint write fails: the
    /// temp file is abandoned and the previous generation survives.
    pub disk_fsync_probability: f64,
    /// Stall every Nth checkpoint write long enough to trip slow-disk
    /// watchdogs (0 = never).
    pub disk_slow_every: u64,
}

impl FaultSpec {
    /// Parses a comma-separated `key=value` spec string.
    ///
    /// Keys (all optional; whitespace around items is ignored):
    ///
    /// | key             | value        | meaning |
    /// |-----------------|--------------|---------|
    /// | `panic`         | prob in 0..1 | each `(shard, attempt)` panics with this probability |
    /// | `kill-shard`    | shard index  | this shard panics on every attempt |
    /// | `poison`        | prob in 0..1 | each `(shard, attempt)` emits one NaN/Inf chip outcome |
    /// | `poison-chip`   | chip index   | this chip's outcome is always non-finite |
    /// | `ckpt-flip`     | period N     | every Nth checkpoint write has one bit flipped |
    /// | `ckpt-truncate` | period N     | every Nth checkpoint write is truncated |
    /// | `stuck`         | prob in 0..1 | each chip/core sensor is stuck with this probability |
    /// | `stuck-chip`    | chip index   | this chip/core's sensor is always stuck |
    /// | `disk-full`     | prob in 0..1 | each checkpoint write fails with ENOSPC with this probability |
    /// | `disk-torn`     | period N     | every Nth checkpoint write is torn (a prefix reaches disk) |
    /// | `disk-fsync`    | prob in 0..1 | each checkpoint fsync fails with this probability |
    /// | `disk-slow`     | period N     | every Nth checkpoint write stalls |
    ///
    /// An empty (or all-whitespace) string parses to the no-op spec.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] on malformed items, unknown keys, or
    /// out-of-range values.
    ///
    /// # Examples
    ///
    /// ```
    /// let spec = dh_fault::FaultSpec::parse("panic=0.01,ckpt-flip=2,stuck-chip=5").unwrap();
    /// assert_eq!(spec.panic_probability, 0.01);
    /// assert_eq!(spec.checkpoint_flip_every, 2);
    /// assert_eq!(spec.stuck_chip, Some(5));
    /// ```
    pub fn parse(text: &str) -> Result<Self, FaultSpecError> {
        let mut spec = Self::default();
        for item in text.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| FaultSpecError::Malformed(item.to_string()))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = || FaultSpecError::BadValue {
                key: key.to_string(),
                value: value.to_string(),
            };
            let prob = |slot: &mut f64| -> Result<(), FaultSpecError> {
                let p: f64 = value.parse().map_err(|_| bad())?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(bad());
                }
                *slot = p;
                Ok(())
            };
            match key {
                "panic" => prob(&mut spec.panic_probability)?,
                "poison" => prob(&mut spec.poison_probability)?,
                "stuck" => prob(&mut spec.stuck_probability)?,
                "kill-shard" => spec.kill_shard = Some(value.parse().map_err(|_| bad())?),
                "poison-chip" => spec.poison_chip = Some(value.parse().map_err(|_| bad())?),
                "stuck-chip" => spec.stuck_chip = Some(value.parse().map_err(|_| bad())?),
                "ckpt-flip" => spec.checkpoint_flip_every = value.parse().map_err(|_| bad())?,
                "ckpt-truncate" => {
                    spec.checkpoint_truncate_every = value.parse().map_err(|_| bad())?;
                }
                "disk-full" => prob(&mut spec.disk_full_probability)?,
                "disk-fsync" => prob(&mut spec.disk_fsync_probability)?,
                "disk-torn" => spec.disk_torn_every = value.parse().map_err(|_| bad())?,
                "disk-slow" => spec.disk_slow_every = value.parse().map_err(|_| bad())?,
                _ => return Err(FaultSpecError::UnknownKey(key.to_string())),
            }
        }
        Ok(spec)
    }

    /// True when the spec injects nothing at all.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

impl fmt::Display for FaultSpec {
    /// Renders the spec back in its canonical `key=value` form (only
    /// the active keys, in grammar order).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut item = |f: &mut fmt::Formatter<'_>, text: String| -> fmt::Result {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            write!(f, "{text}")
        };
        if self.panic_probability > 0.0 {
            item(f, format!("panic={}", self.panic_probability))?;
        }
        if let Some(shard) = self.kill_shard {
            item(f, format!("kill-shard={shard}"))?;
        }
        if self.poison_probability > 0.0 {
            item(f, format!("poison={}", self.poison_probability))?;
        }
        if let Some(chip) = self.poison_chip {
            item(f, format!("poison-chip={chip}"))?;
        }
        if self.checkpoint_flip_every > 0 {
            item(f, format!("ckpt-flip={}", self.checkpoint_flip_every))?;
        }
        if self.checkpoint_truncate_every > 0 {
            item(
                f,
                format!("ckpt-truncate={}", self.checkpoint_truncate_every),
            )?;
        }
        if self.stuck_probability > 0.0 {
            item(f, format!("stuck={}", self.stuck_probability))?;
        }
        if let Some(chip) = self.stuck_chip {
            item(f, format!("stuck-chip={chip}"))?;
        }
        if self.disk_full_probability > 0.0 {
            item(f, format!("disk-full={}", self.disk_full_probability))?;
        }
        if self.disk_torn_every > 0 {
            item(f, format!("disk-torn={}", self.disk_torn_every))?;
        }
        if self.disk_fsync_probability > 0.0 {
            item(f, format!("disk-fsync={}", self.disk_fsync_probability))?;
        }
        if self.disk_slow_every > 0 {
            item(f, format!("disk-slow={}", self.disk_slow_every))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_noop() -> Result<(), FaultSpecError> {
        assert!(FaultSpec::parse("")?.is_empty());
        assert!(FaultSpec::parse("  ,  ")?.is_empty());
        Ok(())
    }

    #[test]
    fn parses_every_key() -> Result<(), FaultSpecError> {
        let spec = FaultSpec::parse(
            "panic=0.25, kill-shard=3, poison=0.5, poison-chip=7, \
             ckpt-flip=2, ckpt-truncate=4, stuck=0.1, stuck-chip=9, \
             disk-full=0.2, disk-torn=3, disk-fsync=0.15, disk-slow=6",
        )?;
        assert_eq!(spec.panic_probability, 0.25);
        assert_eq!(spec.kill_shard, Some(3));
        assert_eq!(spec.poison_probability, 0.5);
        assert_eq!(spec.poison_chip, Some(7));
        assert_eq!(spec.checkpoint_flip_every, 2);
        assert_eq!(spec.checkpoint_truncate_every, 4);
        assert_eq!(spec.stuck_probability, 0.1);
        assert_eq!(spec.stuck_chip, Some(9));
        assert_eq!(spec.disk_full_probability, 0.2);
        assert_eq!(spec.disk_torn_every, 3);
        assert_eq!(spec.disk_fsync_probability, 0.15);
        assert_eq!(spec.disk_slow_every, 6);
        Ok(())
    }

    #[test]
    fn display_round_trips() -> Result<(), FaultSpecError> {
        let text = "panic=0.01,ckpt-flip=2,stuck-chip=5,disk-full=0.2,disk-torn=3";
        let spec = FaultSpec::parse(text)?;
        assert_eq!(spec.to_string(), text);
        assert_eq!(FaultSpec::parse(&spec.to_string())?, spec);
        Ok(())
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            FaultSpec::parse("panic"),
            Err(FaultSpecError::Malformed(_))
        ));
        assert!(matches!(
            FaultSpec::parse("warp=0.5"),
            Err(FaultSpecError::UnknownKey(_))
        ));
        assert!(matches!(
            FaultSpec::parse("panic=1.5"),
            Err(FaultSpecError::BadValue { .. })
        ));
        assert!(matches!(
            FaultSpec::parse("kill-shard=minus-one"),
            Err(FaultSpecError::BadValue { .. })
        ));
        assert!(matches!(
            FaultSpec::parse("disk-full=2"),
            Err(FaultSpecError::BadValue { .. })
        ));
    }
}
