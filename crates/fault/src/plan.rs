//! The seeded plan that turns a [`FaultSpec`] into reproducible
//! injection decisions.

use rand::Rng;

use crate::report::{DiskFaultKind, SensorFaultKind};
use crate::spec::{FaultSpec, FaultSpecError};

/// Named RNG stream for per-`(shard, attempt)` panic decisions.
const PANIC_STREAM: &str = "fault/panic";
/// Named RNG stream for per-`(shard, attempt)` poisoning decisions.
const POISON_STREAM: &str = "fault/poison";
/// Named RNG stream for per-write checkpoint corruption.
const CKPT_STREAM: &str = "fault/ckpt";
/// Named RNG stream for per-chip (per-core) sensor faults.
const STUCK_STREAM: &str = "fault/stuck";
/// Named RNG stream for per-write disk faults (ENOSPC, torn writes,
/// failed fsyncs, stalls). Each write consumes three indices: `3i` for
/// the ENOSPC coin, `3i + 1` for the fsync coin, `3i + 2` for the torn
/// prefix length.
const DISK_STREAM: &str = "fault/disk";

/// The non-finite value a poisoning fault writes into a kernel output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoisonKind {
    /// Quiet NaN.
    Nan,
    /// Positive infinity.
    PosInf,
    /// Negative infinity.
    NegInf,
}

impl PoisonKind {
    /// The `f64` this poison writes.
    pub fn value(self) -> f64 {
        match self {
            Self::Nan => f64::NAN,
            Self::PosInf => f64::INFINITY,
            Self::NegInf => f64::NEG_INFINITY,
        }
    }
}

/// How a checkpoint write is corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointCorruption {
    /// One bit of the encoded file is flipped.
    BitFlip,
    /// The encoded file is cut short.
    Truncate,
}

/// A seeded, deterministic fault plan.
///
/// Every decision method is a pure function of the plan's seed and its
/// arguments; no internal state advances between calls. That means the
/// layers consuming a plan (pool supervisor, checkpoint store, chip
/// simulation, core scheduler) can query it from any thread in any
/// order and still inject an identical fault set run to run.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    seed: u64,
}

impl FaultPlan {
    /// Builds a plan from a parsed spec and an injection seed.
    ///
    /// The seed is independent of any simulation seed so the same chaos
    /// campaign can replay against different workloads.
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        Self { spec, seed }
    }

    /// Parses `text` as a [`FaultSpec`] and builds the plan.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] when the spec string does not parse.
    pub fn parse(text: &str, seed: u64) -> Result<Self, FaultSpecError> {
        Ok(Self::new(FaultSpec::parse(text)?, seed))
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// The injection seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the plan injects nothing (supervised paths behave
    /// exactly like unsupervised ones).
    pub fn is_noop(&self) -> bool {
        self.spec.is_empty()
    }

    /// Mixes `(shard, attempt)` into one stream index so retries of the
    /// same shard draw fresh, but still deterministic, fault decisions.
    fn attempt_index(shard: u64, attempt: u32) -> u64 {
        shard
            .wrapping_mul(1_000_003)
            .wrapping_add(u64::from(attempt))
    }

    /// Draws a Bernoulli decision from a named stream.
    fn coin(&self, stream: &str, index: u64, probability: f64) -> bool {
        if probability <= 0.0 {
            return false;
        }
        if probability >= 1.0 {
            return true;
        }
        let mut rng = dh_units::rng::seeded_stream_rng(self.seed, stream, index);
        rng.gen::<f64>() < probability
    }

    /// Should attempt `attempt` (1-based) of `shard` panic mid-task?
    ///
    /// A `kill-shard` directive panics on every attempt; the `panic`
    /// probability is drawn fresh per `(shard, attempt)` so transient
    /// panics can succeed on retry.
    pub fn shard_panics(&self, shard: u64, attempt: u32) -> bool {
        if self.spec.kill_shard == Some(shard) {
            return true;
        }
        self.coin(
            PANIC_STREAM,
            Self::attempt_index(shard, attempt),
            self.spec.panic_probability,
        )
    }

    /// Does attempt `attempt` of `shard` poison one of its `chips`
    /// outcomes, and if so which offset with which non-finite value?
    ///
    /// Returns `None` when `chips == 0` or the draw misses. Directed
    /// poisoning (`poison-chip`) is separate — see
    /// [`FaultPlan::poisoned_chip`].
    pub fn poison(&self, shard: u64, attempt: u32, chips: u64) -> Option<(u64, PoisonKind)> {
        if chips == 0 || self.spec.poison_probability <= 0.0 {
            return None;
        }
        let mut rng = dh_units::rng::seeded_stream_rng(
            self.seed,
            POISON_STREAM,
            Self::attempt_index(shard, attempt),
        );
        if rng.gen::<f64>() >= self.spec.poison_probability {
            return None;
        }
        let offset = rng.gen_range(0..chips);
        let kind = match rng.gen_range(0..3_u8) {
            0 => PoisonKind::Nan,
            1 => PoisonKind::PosInf,
            _ => PoisonKind::NegInf,
        };
        Some((offset, kind))
    }

    /// The global chip index whose outcome is always poisoned (the
    /// `poison-chip` directive), if any.
    pub fn poisoned_chip(&self) -> Option<u64> {
        self.spec.poison_chip
    }

    /// How checkpoint write number `write_index` (0-based, counted per
    /// process invocation) is corrupted, if at all.
    ///
    /// Truncation wins when both periods land on the same write.
    pub fn checkpoint_corruption(&self, write_index: u64) -> Option<CheckpointCorruption> {
        let hits = |every: u64| every > 0 && (write_index + 1).is_multiple_of(every);
        if hits(self.spec.checkpoint_truncate_every) {
            Some(CheckpointCorruption::Truncate)
        } else if hits(self.spec.checkpoint_flip_every) {
            Some(CheckpointCorruption::BitFlip)
        } else {
            None
        }
    }

    /// Applies this write's corruption (if any) to the encoded bytes,
    /// returning a human-readable description of what was done.
    ///
    /// Bit position and truncation length are drawn from the `fault/ckpt`
    /// stream at `write_index`, so a replayed campaign damages the same
    /// bytes.
    pub fn corrupt_checkpoint(&self, write_index: u64, bytes: &mut Vec<u8>) -> Option<String> {
        let kind = self.checkpoint_corruption(write_index)?;
        if bytes.is_empty() {
            return None;
        }
        let mut rng = dh_units::rng::seeded_stream_rng(self.seed, CKPT_STREAM, write_index);
        match kind {
            CheckpointCorruption::BitFlip => {
                let byte = rng.gen_range(0..bytes.len());
                let bit = rng.gen_range(0..8_u8);
                bytes[byte] ^= 1 << bit;
                Some(format!("flipped bit {bit} of byte {byte}/{}", bytes.len()))
            }
            CheckpointCorruption::Truncate => {
                let keep = rng.gen_range(0..bytes.len());
                let total = bytes.len();
                bytes.truncate(keep);
                Some(format!("truncated to {keep}/{total} bytes"))
            }
        }
    }

    /// The disk fault afflicting checkpoint write number `write_index`
    /// (0-based, counted per process invocation), if any.
    ///
    /// At most one disk fault fires per write; when several directives
    /// land on the same write the most destructive wins, in the fixed
    /// order ENOSPC > torn write > failed fsync > stall. Decisions are
    /// pure functions of `(seed, write_index)`, so a replayed campaign
    /// starves the same writes.
    pub fn disk_fault(&self, write_index: u64) -> Option<DiskFaultKind> {
        let hits = |every: u64| every > 0 && (write_index + 1).is_multiple_of(every);
        let base = write_index.wrapping_mul(3);
        if self.coin(DISK_STREAM, base, self.spec.disk_full_probability) {
            Some(DiskFaultKind::Enospc)
        } else if hits(self.spec.disk_torn_every) {
            Some(DiskFaultKind::TornWrite)
        } else if self.coin(
            DISK_STREAM,
            base.wrapping_add(1),
            self.spec.disk_fsync_probability,
        ) {
            Some(DiskFaultKind::FsyncFail)
        } else if hits(self.spec.disk_slow_every) {
            Some(DiskFaultKind::SlowWrite)
        } else {
            None
        }
    }

    /// How many bytes of a torn write actually reach the disk.
    ///
    /// Draws a strict prefix (at least one byte short, possibly empty)
    /// from the `fault/disk` stream at `write_index`, so a replayed
    /// campaign tears the file at the same offset.
    pub fn torn_length(&self, write_index: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let mut rng = dh_units::rng::seeded_stream_rng(
            self.seed,
            DISK_STREAM,
            write_index.wrapping_mul(3).wrapping_add(2),
        );
        rng.gen_range(0..len)
    }

    /// The sensor fault afflicting chip (or core) `index`, if any.
    ///
    /// Plan-driven sensor faults are always [`SensorFaultKind::Stuck`] —
    /// the failure mode the paper's replica-path monitors actually
    /// exhibit when their ring oscillator latches up. Dropped and noisy
    /// faults can be injected directly at the scheduler layer.
    pub fn sensor_fault(&self, index: u64) -> Option<SensorFaultKind> {
        if self.spec.stuck_chip == Some(index)
            || self.coin(STUCK_STREAM, index, self.spec.stuck_probability)
        {
            return Some(SensorFaultKind::Stuck);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(text: &str) -> FaultPlan {
        FaultPlan::parse(text, 99).expect("test spec parses")
    }

    #[test]
    fn decisions_are_reproducible_and_seed_dependent() {
        let a = plan("panic=0.3,poison=0.3,stuck=0.3");
        let b = plan("panic=0.3,poison=0.3,stuck=0.3");
        let c = FaultPlan::parse("panic=0.3,poison=0.3,stuck=0.3", 100).unwrap();
        let a_bits: Vec<bool> = (0..64).map(|s| a.shard_panics(s, 1)).collect();
        let b_bits: Vec<bool> = (0..64).map(|s| b.shard_panics(s, 1)).collect();
        let c_bits: Vec<bool> = (0..64).map(|s| c.shard_panics(s, 1)).collect();
        assert_eq!(a_bits, b_bits);
        assert_ne!(a_bits, c_bits, "a different seed must move the faults");
        assert_eq!(a.poison(5, 1, 16), b.poison(5, 1, 16));
        assert_eq!(a.sensor_fault(7), b.sensor_fault(7));
    }

    #[test]
    fn retries_draw_fresh_decisions() {
        let p = plan("panic=0.5");
        let per_attempt: Vec<bool> = (1..=16).map(|a| p.shard_panics(3, a)).collect();
        assert!(
            per_attempt.iter().any(|&x| x) && per_attempt.iter().any(|&x| !x),
            "attempts must not all share one fate: {per_attempt:?}"
        );
    }

    #[test]
    fn kill_shard_panics_every_attempt() {
        let p = plan("kill-shard=4");
        for attempt in 1..=8 {
            assert!(p.shard_panics(4, attempt));
        }
        assert!(!p.shard_panics(5, 1));
    }

    #[test]
    fn checkpoint_periods_select_writes() {
        let p = plan("ckpt-flip=2,ckpt-truncate=3");
        assert_eq!(p.checkpoint_corruption(0), None);
        assert_eq!(
            p.checkpoint_corruption(1),
            Some(CheckpointCorruption::BitFlip)
        );
        // Truncation wins on write 5 (hit by both periods).
        assert_eq!(
            p.checkpoint_corruption(5),
            Some(CheckpointCorruption::Truncate)
        );
    }

    #[test]
    fn corruption_damages_bytes_deterministically() {
        let p = plan("ckpt-flip=1");
        let clean: Vec<u8> = (0..64).collect();
        let mut a = clean.clone();
        let mut b = clean.clone();
        let wa = p
            .corrupt_checkpoint(0, &mut a)
            .expect("write 0 is corrupted");
        let wb = p
            .corrupt_checkpoint(0, &mut b)
            .expect("write 0 is corrupted");
        assert_eq!(a, b);
        assert_eq!(wa, wb);
        assert_ne!(a, clean);
        // Exactly one bit differs.
        let bits: u32 = a
            .iter()
            .zip(&clean)
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(bits, 1);
    }

    #[test]
    fn truncation_shortens_the_file() {
        let p = plan("ckpt-truncate=1");
        let mut bytes: Vec<u8> = (0..64).collect();
        p.corrupt_checkpoint(0, &mut bytes)
            .expect("write 0 is corrupted");
        assert!(bytes.len() < 64);
    }

    #[test]
    fn noop_plan_injects_nothing() {
        let p = plan("");
        assert!(p.is_noop());
        for i in 0..32 {
            assert!(!p.shard_panics(i, 1));
            assert_eq!(p.poison(i, 1, 16), None);
            assert_eq!(p.checkpoint_corruption(i), None);
            assert_eq!(p.sensor_fault(i), None);
            assert_eq!(p.disk_fault(i), None);
        }
    }

    #[test]
    fn disk_periods_and_coins_select_writes() {
        let p = plan("disk-torn=2,disk-slow=3");
        assert_eq!(p.disk_fault(0), None);
        assert_eq!(p.disk_fault(1), Some(DiskFaultKind::TornWrite));
        assert_eq!(p.disk_fault(2), Some(DiskFaultKind::SlowWrite));
        // Torn beats slow on write 5 (hit by both periods).
        assert_eq!(p.disk_fault(5), Some(DiskFaultKind::TornWrite));
        // ENOSPC beats a torn period on the writes its coin selects.
        let p = plan("disk-full=1,disk-torn=1");
        assert_eq!(p.disk_fault(0), Some(DiskFaultKind::Enospc));
    }

    #[test]
    fn disk_decisions_are_reproducible_and_seed_dependent() {
        let a = plan("disk-full=0.4,disk-fsync=0.4");
        let b = plan("disk-full=0.4,disk-fsync=0.4");
        let c = FaultPlan::parse("disk-full=0.4,disk-fsync=0.4", 100).unwrap();
        let a_hits: Vec<_> = (0..64).map(|i| a.disk_fault(i)).collect();
        let b_hits: Vec<_> = (0..64).map(|i| b.disk_fault(i)).collect();
        let c_hits: Vec<_> = (0..64).map(|i| c.disk_fault(i)).collect();
        assert_eq!(a_hits, b_hits);
        assert_ne!(a_hits, c_hits, "a different seed must move the faults");
        assert!(a_hits.contains(&Some(DiskFaultKind::Enospc)));
        assert!(a_hits.contains(&Some(DiskFaultKind::FsyncFail)));
    }

    #[test]
    fn torn_length_is_a_strict_prefix() {
        let p = plan("disk-torn=1");
        for i in 0..16 {
            let keep = p.torn_length(i, 64);
            assert!(keep < 64);
            assert_eq!(keep, p.torn_length(i, 64));
        }
        assert_eq!(p.torn_length(0, 0), 0);
    }

    #[test]
    fn directed_stuck_sensor() {
        let p = plan("stuck-chip=11");
        assert_eq!(p.sensor_fault(11), Some(SensorFaultKind::Stuck));
        assert_eq!(p.sensor_fault(12), None);
    }
}
