//! Deterministic fault injection for the deep-healing workspace.
//!
//! The fleet layer runs million-chip simulations for hours across a
//! thread pool with periodic checkpoints, and the scheduler layer trusts
//! in-situ aging sensors. Hardening those paths is only testable if the
//! faults themselves are reproducible, so everything here is driven by a
//! seeded [`FaultPlan`]: every injection decision — "does shard 17 panic
//! on attempt 2?", "which byte of checkpoint write 3 gets flipped?",
//! "is chip 905's sensor stuck?" — is a pure function of
//! `(seed, named stream, index)` via [`dh_units::rng::seeded_stream_rng`].
//! Running the same plan twice, at any thread count, injects the same
//! faults in the same places.
//!
//! The crate deliberately has no dependency on the execution, fleet, or
//! scheduler crates: those layers *consume* a plan (asking it yes/no
//! questions at their own injection points) and *produce* a
//! [`DegradedReport`] describing what the run survived. A plan parsed
//! from an empty spec injects nothing, so production paths can thread an
//! `Option<&FaultPlan>` through unconditionally.
//!
//! Spec strings are compact `key=value` lists, e.g.
//! `"panic=0.01,ckpt-flip=2,stuck-chip=5"` — see [`FaultSpec::parse`]
//! for the full grammar. The same string works in tests, on the bench
//! CLI (`fleet --inject <spec>`), and in the CI chaos job.

#![warn(missing_docs)]

mod plan;
mod report;
mod spec;

pub use plan::{CheckpointCorruption, FaultPlan, PoisonKind};
pub use report::{
    CheckpointFallback, DegradedReport, DiskFaultKind, DiskIncident, SensorFaultKind,
    SensorIncident, ShardFailure,
};
pub use spec::{FaultSpec, FaultSpecError};
