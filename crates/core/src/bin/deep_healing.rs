//! `deep-healing` — command-line front end for the reproduction suite.
//!
//! ```text
//! deep-healing table1            # Table I comparison
//! deep-healing fig4 | fig5 | fig6 | fig7 | fig9 | fig10 | fig11
//! deep-healing fig12 [years]    # lifetime policy comparison
//! deep-healing all [years]      # everything, paper order
//! ```

use std::env;
use std::process::ExitCode;

use deep_healing::experiments;

fn usage() -> ExitCode {
    eprintln!(
        "usage: deep-healing <command>\n\
         commands:\n\
         \u{20} table1          BTI recovery under the four Table I conditions\n\
         \u{20} fig4            permanent BTI component vs stress:recovery schedule\n\
         \u{20} fig5            EM stress + active/passive recovery\n\
         \u{20} fig6            early EM recovery and reverse-current EM\n\
         \u{20} fig7            periodic EM recovery during nucleation\n\
         \u{20} fig9            assist circuitry truth table and operating points\n\
         \u{20} fig10           load size vs delay and switching time\n\
         \u{20} fig11           PDN EM hazard by layer\n\
         \u{20} fig12 [years]   lifetime policy comparison (default 1 year)\n\
         \u{20} all [years]     every experiment in paper order"
    );
    ExitCode::from(2)
}

fn parse_years(arg: Option<String>) -> Result<f64, ExitCode> {
    match arg {
        None => Ok(1.0),
        Some(s) => match s.parse::<f64>() {
            Ok(y) if y > 0.0 && y.is_finite() => Ok(y),
            _ => {
                eprintln!("error: years must be a positive number, got {s:?}");
                Err(ExitCode::from(2))
            }
        },
    }
}

fn run_fig12(years: f64) -> ExitCode {
    match experiments::fig12(years) {
        Ok(outcomes) => {
            print!("{}", experiments::render_fig12(&outcomes));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args = env::args().skip(1);
    let Some(command) = args.next() else {
        return usage();
    };
    match command.as_str() {
        "table1" => print!("{}", experiments::table1().render()),
        "fig4" => print!("{}", experiments::fig4().render()),
        "fig5" => print!("{}", experiments::render_fig5(&experiments::fig5())),
        "fig6" => print!("{}", experiments::render_fig6(&experiments::fig6())),
        "fig7" => print!("{}", experiments::render_fig7(&experiments::fig7())),
        "fig9" => print!("{}", experiments::fig9().render()),
        "fig10" => print!("{}", experiments::render_fig10(&experiments::fig10())),
        "fig11" => print!("{}", experiments::fig11().render()),
        "fig12" => {
            return match parse_years(args.next()) {
                Ok(years) => run_fig12(years),
                Err(code) => code,
            };
        }
        "all" => {
            let years = match parse_years(args.next()) {
                Ok(y) => y,
                Err(code) => return code,
            };
            print!("{}", experiments::table1().render());
            print!("\n{}", experiments::fig4().render());
            print!("\n{}", experiments::render_fig5(&experiments::fig5()));
            print!("\n{}", experiments::render_fig6(&experiments::fig6()));
            print!("\n{}", experiments::render_fig7(&experiments::fig7()));
            print!("\n{}", experiments::fig9().render());
            print!("\n{}", experiments::render_fig10(&experiments::fig10()));
            print!("\n{}", experiments::fig11().render());
            return run_fig12(years);
        }
        "-h" | "--help" | "help" => {
            return usage();
        }
        other => {
            eprintln!("error: unknown command {other:?}");
            return usage();
        }
    }
    ExitCode::SUCCESS
}
