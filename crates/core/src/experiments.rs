//! One-call reproductions of every table and figure in the paper's
//! evaluation.
//!
//! Each function runs the corresponding experiment on the calibrated models
//! and returns structured results with a `render()` method producing the
//! plain-text table/series the reproduction binaries print. The paper's own
//! numbers are embedded so every result is a paper-vs-measured comparison.

use dh_bti::analytic::AnalyticBtiModel;
use dh_bti::calibration::TableOneTargets;
use dh_bti::schedule::{permanent_series, CyclicSchedule};
use dh_bti::{RecoveryCondition, TrapEnsemble};
use dh_circuit::assist::{AssistCircuit, Device, Mode, ModeSolution};
use dh_circuit::sweep::{load_size_sweep, LoadSweepPoint, SweepConfig};
use dh_em::black::BlackModel;
use dh_em::schedule::{
    early_recovery_experiment, periodic_recovery_experiment, stress_recovery_experiment,
    EarlyRecoveryOutcome, PeriodicRecoveryOutcome, StressRecoveryOutcome,
};
use dh_em::EmWire;
use dh_pdn::grid::{LayerClass, PdnConfig, PdnMesh, PdnSolution};
use dh_pdn::hazard::HazardReport;
use dh_sched::lifetime::{compare_policies, LifetimeConfig, LifetimeOutcome};
use dh_sched::policy::Policy;
use dh_units::{Celsius, CurrentDensity, Seconds, TimeSeries};

/// Number of traps used for the Table I ensemble (large enough that the
/// stratified ensemble is smooth; small enough to run in milliseconds).
const TABLE1_TRAPS: usize = 2000;

/// One row of the Table I comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Condition number (1–4).
    pub condition_no: usize,
    /// Condition description.
    pub condition: String,
    /// The paper's measured recovery percentage.
    pub paper_measurement: f64,
    /// The paper's model-column percentage.
    pub paper_model: f64,
    /// This reproduction's trap-ensemble ("measurement") percentage.
    pub simulated_measurement: f64,
    /// This reproduction's analytic-model percentage.
    pub simulated_model: f64,
}

/// The Table I reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Result {
    /// Rows in condition order 1–4.
    pub rows: [Table1Row; 4],
}

impl Table1Result {
    /// Renders the comparison as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Table I: BTI recovery after 24 h accelerated stress + 6 h recovery\n");
        out.push_str(&format!(
            "{:>3}  {:<22} {:>12} {:>12} {:>12} {:>12}\n",
            "#", "condition", "paper meas", "ours (CET)", "paper model", "ours (anl)"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:>3}  {:<22} {:>11.2}% {:>11.2}% {:>11.2}% {:>11.2}%\n",
                r.condition_no,
                r.condition,
                r.paper_measurement,
                r.simulated_measurement,
                r.paper_model,
                r.simulated_model,
            ));
        }
        out
    }
}

/// Reproduces Table I: the four-condition recovery comparison, with the
/// trap ensemble playing the measurement column and the analytic model the
/// model column.
///
/// # Panics
///
/// Never panics with the built-in calibration (covered by tests).
pub fn table1() -> Table1Result {
    let analytic = AnalyticBtiModel::paper_calibrated();
    let ensemble =
        TrapEnsemble::paper_calibrated(TABLE1_TRAPS).expect("paper ensemble calibration converges");
    let targets = TableOneTargets::measurement_column();
    let model_targets = TableOneTargets::model_column();
    let cet = ensemble.table_one_percentages();

    let labels = [
        "20 °C and 0 V",
        "20 °C and −0.3 V",
        "110 °C and 0 V",
        "110 °C and −0.3 V",
    ];
    let rows: Vec<Table1Row> = RecoveryCondition::table_one()
        .iter()
        .enumerate()
        .map(|(i, &cond)| Table1Row {
            condition_no: i + 1,
            condition: labels[i].to_string(),
            paper_measurement: targets.fractions[i].as_percent(),
            paper_model: model_targets.fractions[i].as_percent(),
            simulated_measurement: cet[i],
            simulated_model: analytic
                .recovery_fraction(targets.stress_time, targets.recovery_time, cond)
                .as_percent(),
        })
        .collect();
    Table1Result {
        rows: rows.try_into().expect("exactly four rows"),
    }
}

/// The Fig. 4 reproduction: permanent-component accumulation under cyclic
/// stress/recovery schedules.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Result {
    /// One permanent-ΔVth series per schedule (4:1, 2:1, 1:1).
    pub series: Vec<TimeSeries>,
    /// Final permanent component (mV) per schedule, same order.
    pub final_permanent_mv: Vec<f64>,
    /// Permanent component after the same total stress applied
    /// continuously (the no-schedule reference).
    pub continuous_permanent_mv: f64,
}

impl Fig4Result {
    /// Renders the schedule series and summary.
    pub fn render(&self) -> String {
        let refs: Vec<&TimeSeries> = self.series.iter().collect();
        let mut out =
            String::from("Fig. 4: permanent BTI component under stress:recovery schedules\n");
        out.push_str(&TimeSeries::render_plot(&refs, 80, 16));
        out.push('\n');
        out.push_str(&TimeSeries::render_table(&refs));
        out.push_str(&format!(
            "\ncontinuous 24 h stress reference: {:.2} mV permanent\n",
            self.continuous_permanent_mv
        ));
        for (s, p) in self.series.iter().zip(&self.final_permanent_mv) {
            out.push_str(&format!(
                "{:<28} final permanent: {:>6.3} mV ({:>5.1}% of continuous)\n",
                s.label(),
                p,
                p / self.continuous_permanent_mv * 100.0
            ));
        }
        out
    }
}

/// Reproduces Fig. 4: 24 h of total accelerated stress delivered as 4:1,
/// 2:1 and 1:1 stress:recovery cycles (condition-4 recovery); the balanced
/// schedule keeps the permanent component at ≈0.
pub fn fig4() -> Fig4Result {
    let model = AnalyticBtiModel::paper_calibrated();
    let ratios = [4.0, 2.0, 1.0];
    let mut series = Vec::new();
    let mut finals = Vec::new();
    for ratio in ratios {
        let schedule = CyclicSchedule::fig4(ratio, 1.0, 24.0);
        let s = permanent_series(model, &schedule);
        finals.push(s.last().map(|x| x.value).unwrap_or(0.0));
        series.push(s);
    }
    let mut continuous = dh_bti::BtiDevice::new(model);
    continuous.stress(
        Seconds::from_hours(24.0),
        dh_bti::StressCondition::ACCELERATED,
    );
    Fig4Result {
        series,
        final_permanent_mv: finals,
        continuous_permanent_mv: continuous.permanent_mv(),
    }
}

/// The paper's accelerated EM stress current density (±7.96 MA/cm²).
pub fn paper_em_stress() -> CurrentDensity {
    CurrentDensity::from_ma_per_cm2(7.96)
}

/// Reproduces Fig. 5: accelerated stress through nucleation and void
/// growth, then active vs passive recovery, exposing the permanent
/// component.
pub fn fig5() -> StressRecoveryOutcome {
    stress_recovery_experiment(
        EmWire::paper_wire(),
        paper_em_stress(),
        Seconds::from_minutes(550.0),
        Seconds::from_minutes(110.0),
    )
}

/// Renders the Fig. 5 outcome.
pub fn render_fig5(out: &StressRecoveryOutcome) -> String {
    let mut s = String::from("Fig. 5: EM stress + recovery at 230 °C, ±7.96 MA/cm²\n");
    s.push_str(&TimeSeries::render_plot(
        &[&out.active, &out.passive],
        96,
        20,
    ));
    s.push('\n');
    s.push_str(&TimeSeries::render_table(&[&out.active, &out.passive]));
    s.push_str(&format!(
        "\nnucleation at {:.0} min; ΔR peak {:.2} Ω\nactive recovery: {:.1}% in 1/5 stress time (paper: >75%)\npassive recovery: {:.1}%\npermanent ΔR: {:.2} Ω\n",
        out.nucleation_time.map(|t| t.as_minutes()).unwrap_or(f64::NAN),
        out.delta_r_peak,
        out.active_recovered_fraction * 100.0,
        out.passive_recovered_fraction * 100.0,
        out.permanent_delta_r,
    ));
    s
}

/// Reproduces Fig. 6: recovery scheduled early in void growth (full
/// recovery), followed by reverse-current-induced EM.
pub fn fig6() -> EarlyRecoveryOutcome {
    early_recovery_experiment(
        EmWire::paper_wire(),
        paper_em_stress(),
        Seconds::from_minutes(40.0),
        Seconds::from_minutes(600.0),
    )
}

/// Renders the Fig. 6 outcome.
pub fn render_fig6(out: &EarlyRecoveryOutcome) -> String {
    let mut s = String::from("Fig. 6: early EM recovery then sustained reverse current\n");
    s.push_str(&TimeSeries::render_plot(&[&out.trace], 96, 20));
    s.push('\n');
    s.push_str(&TimeSeries::render_table(&[&out.trace]));
    s.push_str(&format!(
        "\nΔR at recovery start {:.3} Ω; after recovery {:.3} Ω (full recovery: ≈0)\nreverse-current EM observed: {}\n",
        out.delta_r_at_recovery_start, out.delta_r_after_recovery, out.reverse_em_observed
    ));
    s
}

/// Reproduces Fig. 7: periodic recovery intervals during the nucleation
/// phase delay nucleation (paper: almost 3×) and extend TTF.
pub fn fig7() -> PeriodicRecoveryOutcome {
    periodic_recovery_experiment(
        EmWire::paper_wire(),
        paper_em_stress(),
        Seconds::from_minutes(60.0),
        Seconds::from_minutes(20.0),
        Seconds::from_hours(60.0),
    )
}

/// Renders the Fig. 7 outcome.
pub fn render_fig7(out: &PeriodicRecoveryOutcome) -> String {
    let mut s = String::from("Fig. 7: periodic scheduled recovery during void nucleation\n");
    s.push_str(&TimeSeries::render_plot(
        &[&out.scheduled, &out.continuous],
        96,
        20,
    ));
    s.push('\n');
    s.push_str(&TimeSeries::render_table(&[
        &out.scheduled,
        &out.continuous,
    ]));
    s.push_str(&format!(
        "\nnucleation: scheduled {:.0} min vs continuous {:.0} min (delay factor {:.2}, paper: ≈3)\nTTF: scheduled {:.0} min vs continuous {:.0} min (extension {:.2}×)\n",
        out.scheduled_nucleation.map(|t| t.as_minutes()).unwrap_or(f64::NAN),
        out.continuous_nucleation.map(|t| t.as_minutes()).unwrap_or(f64::NAN),
        out.nucleation_delay_factor().unwrap_or(f64::NAN),
        out.scheduled_ttf.map(|t| t.as_minutes()).unwrap_or(f64::NAN),
        out.continuous_ttf.map(|t| t.as_minutes()).unwrap_or(f64::NAN),
        out.ttf_extension_factor().unwrap_or(f64::NAN),
    ));
    s
}

/// The Fig. 9 reproduction: the assist circuit's three operating points.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Result {
    /// Normal operation.
    pub normal: ModeSolution,
    /// EM active recovery.
    pub em: ModeSolution,
    /// BTI active recovery.
    pub bti: ModeSolution,
}

impl Fig9Result {
    /// Renders the Fig. 8(b) truth table and the Fig. 9 operating points.
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 8(b): assist-circuit truth table\n");
        s.push_str(&format!("{:<10}", "device"));
        for mode in Mode::ALL {
            s.push_str(&format!("{:>22}", mode.to_string()));
        }
        s.push('\n');
        for device in Device::ALL {
            s.push_str(&format!("{:<10}", device.to_string()));
            for mode in Mode::ALL {
                s.push_str(&format!(
                    "{:>22}",
                    if mode.is_on(device) { "ON" } else { "OFF" }
                ));
            }
            s.push('\n');
        }
        s.push_str("\nFig. 9: functional simulation (28 nm-class, 1 V)\n");
        for sol in [&self.normal, &self.em, &self.bti] {
            s.push_str(&format!(
                "{:<22} grid I = {:>8.1} µA   load VDD = {:.3} V   load VSS = {:.3} V\n",
                sol.mode.to_string(),
                sol.grid_current.value() * 1.0e6,
                sol.load_vdd.value(),
                sol.load_vss.value(),
            ));
        }
        s.push_str(&format!(
            "\nBTI-mode bias across load: {:.3} V (deeper than the −0.3 V used in Table I)\n",
            self.bti.bti_recovery_bias().value()
        ));
        s
    }
}

/// Reproduces Figs. 8–9: the truth table and the three DC operating points.
///
/// # Panics
///
/// Never panics with the built-in circuit (covered by tests).
pub fn fig9() -> Fig9Result {
    let c = AssistCircuit::paper_28nm();
    Fig9Result {
        normal: c.solve(Mode::Normal).expect("paper circuit solves"),
        em: c
            .solve(Mode::EmActiveRecovery)
            .expect("paper circuit solves"),
        bti: c
            .solve(Mode::BtiActiveRecovery)
            .expect("paper circuit solves"),
    }
}

/// Reproduces Fig. 10: the load-size vs delay / switching-time sweep.
///
/// # Panics
///
/// Never panics with the built-in configuration (covered by tests).
pub fn fig10() -> Vec<LoadSweepPoint> {
    load_size_sweep(AssistCircuit::paper_28nm(), SweepConfig::default(), 1..=5)
        .expect("paper sweep solves")
}

/// Renders the Fig. 10 sweep.
pub fn render_fig10(points: &[LoadSweepPoint]) -> String {
    let mut s = String::from("Fig. 10: load size vs performance and switching time\n");
    s.push_str(&format!(
        "{:>5} {:>14} {:>18} {:>18}\n",
        "size", "load V (V)", "normalized delay", "norm. switch time"
    ));
    for p in points {
        s.push_str(&format!(
            "{:>5} {:>14.3} {:>18.3} {:>18.3}\n",
            p.size,
            p.load_voltage.value(),
            p.normalized_delay,
            p.normalized_switching_time
        ));
    }
    s
}

/// The Fig. 11 reproduction: PDN solve + EM hazard map.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Result {
    /// The solved PDN.
    pub solution: PdnSolution,
    /// The hazard report at 85 °C.
    pub hazard: HazardReport,
    /// TTF-extension factor for the local grid with a 20 % EM-recovery
    /// duty.
    pub protected_extension: f64,
}

impl Fig11Result {
    /// Renders the per-layer hazard summary.
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 11: PDN EM hazard by layer (uniform load)\n");
        s.push_str(&format!(
            "worst IR drop: {:.1} mV\n",
            self.solution.worst_ir_drop_v * 1000.0
        ));
        for layer in [
            LayerClass::Local,
            LayerClass::Via,
            LayerClass::Global,
            LayerClass::Bump,
        ] {
            if let Some(e) = self.hazard.worst_in(layer) {
                s.push_str(&format!(
                    "{:<8} peak j = {:>7.3} MA/cm²   worst median TTF = {:>10.1} years\n",
                    layer.to_string(),
                    e.branch.density.as_ma_per_cm2(),
                    e.median_ttf.as_years(),
                ));
            }
        }
        s.push_str(&format!(
            "\nwith 20% EM active-recovery duty on the local grid: TTF × {:.2}\n",
            self.protected_extension
        ));
        s
    }
}

/// Reproduces Fig. 11: the layered PDN with its local grids as the EM
/// hazard, and the assist circuitry's duty-cycled protection.
///
/// # Panics
///
/// Never panics with the built-in configuration (covered by tests).
pub fn fig11() -> Fig11Result {
    let mesh = PdnMesh::new(PdnConfig::default_chip()).expect("default chip is valid");
    let solution = mesh
        .solve_uniform_load(0.25e-3)
        .expect("default chip solves");
    let hazard = HazardReport::analyze(
        &solution,
        &BlackModel::calibrated_to_paper(),
        Celsius::new(85.0).to_kelvin(),
    );
    let protected_extension = dh_pdn::hazard::ttf_extension(
        dh_units::Fraction::clamped(0.2),
        dh_units::Fraction::clamped(0.9),
    )
    .expect("20% duty is not immortal");
    Fig11Result {
        solution,
        hazard,
        protected_extension,
    }
}

/// Reproduces Fig. 12(b): lifetime runs under the policy ladder,
/// returning one outcome per policy (no-recovery, passive-idle,
/// periodic-deep, adaptive, dark-silicon rotation).
///
/// # Errors
///
/// Propagates scheduler errors (cannot occur for positive `years`).
pub fn fig12(years: f64) -> Result<Vec<LifetimeOutcome>, dh_sched::SchedError> {
    let config = LifetimeConfig {
        years,
        ..LifetimeConfig::default()
    };
    compare_policies(
        &config,
        &[
            Policy::NoRecovery,
            Policy::PassiveIdle,
            Policy::periodic_deep_default(),
            Policy::adaptive_default(),
            Policy::rotation_default(),
        ],
        42,
    )
}

/// Renders the Fig. 12(b) policy comparison.
pub fn render_fig12(outcomes: &[LifetimeOutcome]) -> String {
    let mut s = String::from("Fig. 12(b): lifetime policy comparison\n");
    s.push_str(&format!(
        "{:<16} {:>18} {:>16} {:>18} {:>16} {:>16}\n",
        "policy",
        "guardband (freq%)",
        "EM damage",
        "proj. EM TTF (y)",
        "sched ovh (%)",
        "thru loss (%)"
    ));
    for o in outcomes {
        s.push_str(&format!(
            "{:<16} {:>17.2}% {:>16.4} {:>18.1} {:>15.1}% {:>15.2}%\n",
            o.policy,
            o.required_guardband * 100.0,
            o.final_em_damage.value(),
            o.projected_em_ttf.map(|t| t.as_years()).unwrap_or(f64::NAN),
            o.recovery_overhead.as_percent(),
            o.throughput_loss.as_percent(),
        ));
    }
    let series: Vec<&TimeSeries> = outcomes.iter().map(|o| &o.degradation_series).collect();
    s.push('\n');
    s.push_str(&TimeSeries::render_plot(&series, 96, 18));
    s.push('\n');
    s.push_str(&TimeSeries::render_table(&series));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper_within_tolerance() {
        let t = table1();
        for r in &t.rows {
            assert!(
                (r.simulated_measurement - r.paper_measurement).abs() < 1.5,
                "row {}: CET {} vs paper {}",
                r.condition_no,
                r.simulated_measurement,
                r.paper_measurement
            );
            assert!(
                (r.simulated_model - r.paper_model).abs() < 0.5,
                "row {}: analytic {} vs paper {}",
                r.condition_no,
                r.simulated_model,
                r.paper_model
            );
        }
        let text = t.render();
        assert!(text.contains("110 °C and −0.3 V"));
    }

    #[test]
    fn fig4_balanced_schedule_is_practically_zero() {
        let f = fig4();
        assert_eq!(f.series.len(), 3);
        // 1:1 is the last ratio; its permanent component is a small
        // fraction of the continuous reference.
        let balanced = *f.final_permanent_mv.last().unwrap();
        assert!(balanced < 0.15 * f.continuous_permanent_mv);
        // Monotone in stress ratio: 4:1 > 2:1 > 1:1.
        assert!(f.final_permanent_mv[0] > f.final_permanent_mv[1]);
        assert!(f.final_permanent_mv[1] > f.final_permanent_mv[2]);
        assert!(f.render().contains("continuous 24 h stress"));
    }

    #[test]
    fn fig9_operating_points_match_paper() {
        let f = fig9();
        assert!(f.normal.grid_current.value() > 0.0);
        assert!(f.em.grid_current.value() < 0.0);
        assert!(f.bti.load_vss > f.bti.load_vdd);
        let text = f.render();
        assert!(text.contains("truth table"));
        assert!(text.contains("BTI-mode bias"));
    }

    #[test]
    fn fig10_shapes() {
        let points = fig10();
        assert_eq!(points.len(), 5);
        assert!(points[4].normalized_delay > 1.5);
        assert!(points[4].normalized_switching_time < 0.8);
        assert!(render_fig10(&points).contains("size"));
    }

    #[test]
    fn fig11_local_grid_is_the_hazard() {
        let f = fig11();
        assert_eq!(f.hazard.worst().unwrap().branch.layer, LayerClass::Local);
        assert!(f.protected_extension > 1.3);
        assert!(f.render().contains("local"));
    }

    #[test]
    fn fig12_policy_ladder_reduces_guardband() {
        let outs = fig12(0.15).unwrap();
        assert_eq!(outs.len(), 5);
        let by_name = |n: &str| outs.iter().find(|o| o.policy == n).unwrap();
        assert!(
            by_name("no-recovery").required_guardband > by_name("periodic-deep").required_guardband
        );
        assert!(render_fig12(&outs).contains("guardband"));
    }
}
