//! A virtual replica of the paper's BTI measurement setup.
//!
//! The paper's BTI data comes from "2-input Look Up Table (LUT)-based
//! commercial FPGA chips … The test structure is a 75-stage LUT-mapped
//! ring oscillator, the oscillation frequency change is captured during
//! BTI wearout and recovery", inside a thermal chamber holding ±0.3 °C.
//!
//! [`MeasurementRig`] wires those pieces together: a [`ThermalChamber`]
//! drives the device temperature, a device under test ages under
//! programmed stress/recovery phases, and a replica [`RingOscillator`]
//! is sampled (with counter noise) to produce the frequency-vs-time
//! traces behind Table I and Fig. 4.
//!
//! The rig is generic over [`WearModel`], so the device under test can be
//! the analytic [`BtiDevice`] (the default — the paper's "Model" column)
//! or a [`dh_bti::TrapEnsemble`] (the Monte-Carlo "Measurement" column):
//! the same protocol replay cross-validates both models against the
//! paper's numbers.

use rand::rngs::StdRng;

use dh_bti::{BtiDevice, RecoveryCondition, StressCondition, WearModel};
use dh_circuit::RingOscillator;
use dh_thermal::ThermalChamber;
use dh_units::rng::{seeded_rng, standard_normal};
use dh_units::{Celsius, Seconds, TimeSeries, Volts};

/// A programmable stress/recovery measurement rig around any
/// [`WearModel`] device under test.
#[derive(Debug, Clone)]
pub struct MeasurementRig<W: WearModel = BtiDevice> {
    chamber: ThermalChamber,
    ro: RingOscillator,
    device: W,
    /// 1-sigma relative error of each frequency sample.
    counter_noise_rel: f64,
    /// Interval between frequency samples.
    sample_interval: Seconds,
    rng: StdRng,
    trace: TimeSeries,
    time: Seconds,
}

impl MeasurementRig<BtiDevice> {
    /// A rig matching the paper's setup: 75-stage RO, ±0.3 °C chamber,
    /// 0.05 % frequency counters, one sample per 5 minutes, the analytic
    /// [`BtiDevice`] under test.
    pub fn paper_setup(seed: u64) -> Self {
        Self::with_device(seed, BtiDevice::paper_calibrated())
    }
}

impl<W: WearModel> MeasurementRig<W> {
    /// The paper's rig around an arbitrary device under test — e.g. a
    /// [`dh_bti::TrapEnsemble`] to replay a protocol against the
    /// measurement-column model.
    pub fn with_device(seed: u64, device: W) -> Self {
        Self {
            chamber: ThermalChamber::paper(Celsius::new(20.0)),
            ro: RingOscillator::paper_75_stage(),
            device,
            counter_noise_rel: 5.0e-4,
            sample_interval: Seconds::from_minutes(5.0),
            rng: seeded_rng(seed, "measurement-rig"),
            trace: TimeSeries::new("RO frequency (MHz)"),
            time: Seconds::ZERO,
        }
    }

    /// Programs the chamber to a new setpoint.
    pub fn set_chamber(&mut self, setpoint: Celsius) {
        self.chamber.set_setpoint(setpoint);
    }

    /// Runs a stress phase at `gate_voltage` for `duration`, sampling the
    /// oscillator as it degrades.
    pub fn run_stress(&mut self, gate_voltage: Volts, duration: Seconds) {
        self.run_phase(duration, |device, dt, temperature| {
            device.stress(
                dt,
                StressCondition {
                    gate_voltage,
                    temperature,
                },
            );
        });
    }

    /// Runs a recovery phase at `gate_voltage` (≤ 0 activates recovery)
    /// for `duration`.
    pub fn run_recovery(&mut self, gate_voltage: Volts, duration: Seconds) {
        self.run_phase(duration, |device, dt, temperature| {
            device.recover(
                dt,
                RecoveryCondition {
                    gate_voltage,
                    temperature,
                },
            );
        });
    }

    fn run_phase(
        &mut self,
        duration: Seconds,
        mut apply: impl FnMut(&mut W, Seconds, dh_units::Kelvin),
    ) {
        let mut remaining = duration;
        while remaining.value() > 0.0 {
            let dt = remaining.min(self.sample_interval);
            let temperature = self.chamber.temperature_at(self.time);
            apply(&mut self.device, dt, temperature);
            self.time += dt;
            remaining -= dt;
            let f_true = self.ro.frequency(self.device.delta_vth_mv());
            let noise = 1.0 + self.counter_noise_rel * standard_normal(&mut self.rng);
            self.trace.push(self.time, f_true.as_mhz() * noise);
        }
    }

    /// The recorded frequency trace so far.
    pub fn trace(&self) -> &TimeSeries {
        &self.trace
    }

    /// The device under test (e.g. to read the true ΔVth).
    pub fn device(&self) -> &W {
        &self.device
    }

    /// Elapsed experiment time.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// The recovery percentage between two trace times, measured the way
    /// the paper measures it: from the sampled frequencies, converted back
    /// through the replica oscillator.
    ///
    /// Returns `None` if either time is outside the trace.
    pub fn measured_recovery_percent(
        &self,
        stress_end: Seconds,
        recovery_end: Seconds,
    ) -> Option<f64> {
        let f_stressed = self.trace.value_at(stress_end)?;
        let f_recovered = self.trace.value_at(recovery_end)?;
        let mhz = |f: f64| dh_units::Hertz::from_mhz(f);
        let dvth_stressed = self.ro.infer_delta_vth_mv(mhz(f_stressed))?;
        let dvth_recovered = self.ro.infer_delta_vth_mv(mhz(f_recovered)).unwrap_or(0.0);
        if dvth_stressed <= 0.0 {
            return None;
        }
        Some((dvth_stressed - dvth_recovered) / dvth_stressed * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_bti::TrapEnsemble;

    /// Replays the paper's condition-4 experiment end to end through the
    /// virtual rig, including chamber setpoint programming and noisy
    /// frequency counting.
    #[test]
    fn replayed_condition_four_lands_near_table_one() {
        let mut rig = MeasurementRig::paper_setup(5);
        rig.set_chamber(Celsius::new(110.0));
        rig.run_stress(Volts::new(1.2), Seconds::from_hours(24.0));
        let stress_end = rig.time();
        rig.run_recovery(Volts::new(-0.3), Seconds::from_hours(6.0));
        let recovery_end = rig.time();
        let pct = rig
            .measured_recovery_percent(stress_end, recovery_end)
            .unwrap();
        assert!((pct - 72.7).abs() < 3.0, "rig measured {pct}%");
    }

    /// The same replay against the CET trap ensemble — the rig's protocol
    /// machinery is model-agnostic, so the Monte-Carlo "Measurement"
    /// column must land near its own Table I number (72.4 %).
    #[test]
    fn trap_ensemble_rig_replays_condition_four() {
        let ensemble = TrapEnsemble::paper_calibrated(2000).unwrap();
        let mut rig = MeasurementRig::with_device(5, ensemble);
        rig.set_chamber(Celsius::new(110.0));
        rig.run_stress(Volts::new(1.2), Seconds::from_hours(24.0));
        let stress_end = rig.time();
        rig.run_recovery(Volts::new(-0.3), Seconds::from_hours(6.0));
        let recovery_end = rig.time();
        let pct = rig
            .measured_recovery_percent(stress_end, recovery_end)
            .unwrap();
        assert!((pct - 72.4).abs() < 4.0, "CET rig measured {pct}%");
        assert!(rig.device().permanent_mv() > 0.0);
    }

    #[test]
    fn frequency_drops_during_stress_and_rebounds_during_recovery() {
        let mut rig = MeasurementRig::paper_setup(9);
        rig.set_chamber(Celsius::new(110.0));
        let f0 = rig.device().delta_vth_mv();
        assert_eq!(f0, 0.0);
        rig.run_stress(Volts::new(1.2), Seconds::from_hours(4.0));
        let after_stress = rig.trace().last().unwrap().value;
        rig.run_recovery(Volts::new(-0.3), Seconds::from_hours(2.0));
        let after_recovery = rig.trace().last().unwrap().value;
        let fresh = rig.trace().first().unwrap().value;
        assert!(after_stress < fresh, "stress must slow the RO");
        assert!(
            after_recovery > after_stress,
            "recovery must speed it back up"
        );
    }

    #[test]
    fn trace_sampling_matches_the_interval() {
        let mut rig = MeasurementRig::paper_setup(1);
        rig.run_stress(Volts::new(1.2), Seconds::from_hours(1.0));
        assert_eq!(rig.trace().len(), 12); // 60 min / 5 min
        assert_eq!(rig.time(), Seconds::from_hours(1.0));
    }

    #[test]
    fn counter_noise_is_visible_but_small() {
        let mut rig = MeasurementRig::paper_setup(13);
        // No stress: any variation is chamber + counter noise.
        rig.run_recovery(Volts::ZERO, Seconds::from_hours(2.0));
        let values: Vec<f64> = rig.trace().iter().map(|s| s.value).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let spread = values.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max);
        assert!(spread > 0.0, "some noise must show");
        assert!(
            spread / mean < 0.01,
            "noise out of spec: {spread} of {mean}"
        );
    }

    #[test]
    fn out_of_range_measurement_times_return_none() {
        let mut rig = MeasurementRig::paper_setup(2);
        rig.run_stress(Volts::new(1.2), Seconds::from_hours(1.0));
        assert!(rig
            .measured_recovery_percent(Seconds::from_hours(0.5), Seconds::from_hours(9.0))
            .is_none());
    }
}
