//! The margin stack: translating wearout into the design guardbands the
//! paper promises to shrink.
//!
//! "The most common solution for wearout issues is adding margins at
//! design time … this leads to conservative overdesigns, which can
//! significantly sacrifice performance and increase area, power and cost."
//! This module prices those margins. A frequency guardband has three
//! stacked contributions:
//!
//! 1. **wearout** — the worst-device ΔVth the design must tolerate over
//!    its lifetime (the part recovery scheduling attacks);
//! 2. **process spread** — the across-die sensor/device spread (from
//!    `dh-circuit::ro_array`), which calibration handles but uncalibrated
//!    designs must margin;
//! 3. **sensing error** — the tracking error of the run-time loop.
//!
//! The stack converts between three equivalent currencies via the
//! alpha-power delay sensitivity: millivolts of ΔVth, percent of
//! frequency, or millivolts of extra supply (the compensation view).

use dh_circuit::{Mosfet, RingOscillator};
use dh_units::Volts;

/// A frequency-margin stack, all contributions as fractions of the fresh
/// frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginStack {
    /// Margin for lifetime wearout.
    pub wearout: f64,
    /// Margin for uncalibrated process spread (0 for calibrated arrays).
    pub process: f64,
    /// Margin for sensor tracking error.
    pub sensing: f64,
}

impl MarginStack {
    /// The total frequency guardband (simple sum — margins stack
    /// worst-case in timing signoff).
    pub fn total(&self) -> f64 {
        self.wearout + self.process + self.sensing
    }
}

/// Converts a worst-case ΔVth (mV) into an equivalent frequency margin
/// using the reference ring oscillator's sensitivity.
pub fn frequency_margin_for_dvth(ro: &RingOscillator, dvth_mv: f64) -> f64 {
    ro.degradation(dvth_mv.max(0.0))
}

/// Converts a worst-case ΔVth (mV) into the equivalent supply boost (the
/// compensation currency): the ΔVDD restoring the fresh on-current.
///
/// For the alpha-power law, restoring `(V + ΔV − Vth − ΔVth)` to the fresh
/// overdrive needs `ΔV = ΔVth` exactly — which is why compensation power
/// grows quadratically with accumulated wearout.
pub fn supply_boost_for_dvth(dvth_mv: f64) -> Volts {
    Volts::new(dvth_mv.max(0.0) / 1000.0)
}

/// The dynamic-power overhead of compensating `dvth_mv` at supply `vdd`
/// (power ∝ V²).
pub fn compensation_power_overhead(device: &Mosfet, vdd: Volts, dvth_mv: f64) -> f64 {
    let _ = device; // sensitivity is supply-side for the quadratic term
    let boost = supply_boost_for_dvth(dvth_mv);
    ((vdd.value() + boost.value()) / vdd.value()).powi(2) - 1.0
}

/// Builds the margin stack for a design point.
///
/// * `worst_dvth_mv` — lifetime worst-device shift (policy-dependent);
/// * `process_spread` — fresh frequency spread the design cannot calibrate
///   out (0 with per-site calibration);
/// * `sensor_error_mv` — the run-time loop's tracking error.
pub fn margin_stack(
    ro: &RingOscillator,
    worst_dvth_mv: f64,
    process_spread: f64,
    sensor_error_mv: f64,
) -> MarginStack {
    MarginStack {
        wearout: frequency_margin_for_dvth(ro, worst_dvth_mv),
        process: process_spread.max(0.0),
        sensing: frequency_margin_for_dvth(ro, sensor_error_mv),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_circuit::ro_array::RoArray;

    fn ro() -> RingOscillator {
        RingOscillator::paper_75_stage()
    }

    #[test]
    fn margins_stack_additively() {
        let stack = margin_stack(&ro(), 20.0, 0.03, 1.0);
        assert!(stack.total() > stack.wearout);
        assert!((stack.total() - (stack.wearout + stack.process + stack.sensing)).abs() < 1e-12);
    }

    #[test]
    fn wearout_margin_tracks_the_ro_sensitivity() {
        let m = frequency_margin_for_dvth(&ro(), 50.0);
        assert!(m > 0.05 && m < 0.2, "50 mV ≈ 10% class margin, got {m}");
        assert_eq!(frequency_margin_for_dvth(&ro(), 0.0), 0.0);
        assert_eq!(frequency_margin_for_dvth(&ro(), -5.0), 0.0);
    }

    #[test]
    fn compensation_overhead_is_quadratic_in_wearout() {
        let device = Mosfet::n28();
        let vdd = Volts::new(0.9);
        let small = compensation_power_overhead(&device, vdd, 10.0);
        let large = compensation_power_overhead(&device, vdd, 40.0);
        // 4× the shift costs slightly more than 4× the power (quadratic).
        assert!(large > 4.0 * small, "small {small} large {large}");
        assert_eq!(compensation_power_overhead(&device, vdd, 0.0), 0.0);
    }

    #[test]
    fn calibration_removes_the_process_term() {
        // An uncalibrated design must margin the RO array's fresh spread;
        // a calibrated one measures it away.
        let array = RoArray::paper_4x4(42);
        let uncalibrated = margin_stack(&ro(), 20.0, array.fresh_spread_fraction(), 1.0);
        let calibrated = margin_stack(&ro(), 20.0, 0.0, 1.0);
        assert!(uncalibrated.total() > calibrated.total() + 0.01);
    }

    #[test]
    fn deep_healing_shrinks_the_dominant_term() {
        // The paper's bottom line, in margin currency: the same design
        // with scheduled recovery needs a fraction of the wearout margin.
        let no_recovery = margin_stack(&ro(), 19.0, 0.0, 1.0); // ~3 years unhealed
        let healed = margin_stack(&ro(), 2.0, 0.0, 1.0); // scheduled deep healing
        assert!(no_recovery.total() > 3.0 * healed.total());
    }
}
