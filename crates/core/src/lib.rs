//! # Deep Healing
//!
//! A Rust reproduction of Guo & Stan, *"Deep Healing: Ease the BTI and EM
//! Wearout Crisis by Activating Recovery"* (2017).
//!
//! The paper demonstrates that the two dominant wearout mechanisms of
//! nanoscale VLSI — **Bias Temperature Instability** (transistors) and
//! **Electromigration** (interconnect) — can be *actively healed*:
//! reversing the stress direction (negative gate bias / reverse current)
//! **activates** recovery, elevated temperature **accelerates** it, and
//! *in-time scheduled* recovery eliminates the otherwise-permanent wearout
//! component. It proposes assist circuitry and system-level scheduling
//! that exploit this to shrink wearout guardbands.
//!
//! This workspace implements every layer of that story:
//!
//! | crate | contents |
//! |---|---|
//! | [`units`] | physical-quantity newtypes, constants, time series |
//! | [`simd`] | batched `exp(−x)`/`1−exp(−x)` kernels with runtime AVX2/scalar dispatch |
//! | [`bti`] | BTI models: analytic universal relaxation + CET trap ensemble (Table I, Fig. 4) |
//! | [`em`] | EM models: Korhonen stress PDE, void growth/healing, Black statistics (Figs. 5–7) |
//! | [`thermal`] | thermal chamber and RC floorplan grid (dark-silicon healing) |
//! | [`circuit`] | MOSFET, ring oscillators, the three-mode assist circuitry (Figs. 8–10) |
//! | [`pdn`] | layered PDN mesh, IR-drop solver, EM hazard maps (Fig. 11) |
//! | [`sched`] | workloads, sensors, recovery policies, lifetime simulation (Fig. 12) |
//! | [`fleet`] | fleet-scale population simulation: shards, streaming statistics, checkpoint/resume |
//! | [`fault`] | deterministic fault injection and degraded-run reporting (chaos testing) |
//!
//! The [`experiments`] module packages each of the paper's tables and
//! figures as a one-call reproduction; the `dh-bench` crate's binaries
//! print them, and `EXPERIMENTS.md` records paper-vs-measured.
//!
//! # Quick start
//!
//! ```
//! use deep_healing::experiments;
//!
//! // Reproduce Table I (BTI recovery percentages under 4 conditions).
//! let table1 = experiments::table1();
//! // Condition 4 (110 °C, −0.3 V): the paper measured 72.4 %.
//! assert!((table1.rows[3].simulated_measurement - 72.4).abs() < 2.0);
//! println!("{}", table1.render());
//! ```

#![allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > 0.0)` deliberately catches NaN
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod guardband;
pub mod rig;

pub use dh_bti as bti;
pub use dh_circuit as circuit;
pub use dh_em as em;
pub use dh_fault as fault;
pub use dh_fleet as fleet;
pub use dh_obs as obs;
pub use dh_pdn as pdn;
pub use dh_sched as sched;
pub use dh_simd as simd;
pub use dh_thermal as thermal;
pub use dh_units as units;

/// Commonly used items for downstream code.
pub mod prelude {
    pub use dh_bti::{
        AnalyticBtiModel, BtiDevice, RecoveryCondition, StressCondition, TrapEnsemble,
    };
    pub use dh_circuit::{AssistCircuit, Mode, RingOscillator};
    pub use dh_em::{black::BlackModel, network::EmNetwork, EmWire, WireEnd};
    pub use dh_fleet::{run_fleet, FleetConfig, FleetPolicy, FleetReport, MaintenanceBudget};
    pub use dh_pdn::{PdnConfig, PdnMesh, Tower};
    pub use dh_sched::{
        run_lifetime, LifetimeConfig, ManyCoreSystem, MetricsReport, Policy, SystemConfig,
    };
    pub use dh_thermal::{GridConfig, ThermalChamber, ThermalGrid};
    pub use dh_units::{
        Celsius, CurrentDensity, Fraction, Kelvin, Ohms, Seconds, TimeSeries, Volts,
    };
}
