//! Self-scheduling scoped-thread parallel maps.
//!
//! No external thread-pool dependency is available offline, so the
//! engine runs each call on `std::thread::scope` workers that pop item
//! indices from a shared atomic counter (self-scheduling: the classic
//! fix for skewed per-item cost). Results carry their item index and are
//! reassembled in index order, which — together with per-item RNG
//! streams — is what makes output independent of thread count and
//! scheduling.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;

/// Runtime thread-count override; 0 means "not set".
static MAX_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for subsequent parallel calls
/// (`Some(n)` pins it, `None` restores env/hardware detection).
///
/// Results never depend on the thread count — this knob exists for
/// benchmarking serial baselines and for tests that exercise both paths.
pub fn set_max_threads(n: Option<usize>) {
    MAX_THREADS_OVERRIDE.store(n.unwrap_or(0), Ordering::SeqCst);
}

fn env_threads(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// The worker count parallel calls will use: the [`set_max_threads`]
/// override, else `DH_NUM_THREADS`, else `RAYON_NUM_THREADS`, else the
/// machine's available parallelism.
pub fn max_threads() -> usize {
    let overridden = MAX_THREADS_OVERRIDE.load(Ordering::SeqCst);
    if overridden > 0 {
        return overridden;
    }
    env_threads("DH_NUM_THREADS")
        .or_else(|| env_threads("RAYON_NUM_THREADS"))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Workers to spawn for `n_items` items: never more than items, and
/// below a handful of items the spawn cost outweighs the parallelism.
fn worker_count(n_items: usize) -> usize {
    max_threads().min(n_items)
}

/// Records one worker's share of a self-scheduled run: the per-worker
/// item count, and — as the self-scheduling analogue of work stealing —
/// how many items it claimed beyond an even `⌈n/workers⌉` split (only
/// possible because another worker was slower and yielded its share).
fn observe_worker_share(label: &dh_obs::HistogramCell, taken: usize, fair_share: usize) {
    label.get().record(taken as f64);
    dh_obs::counter!("exec.pool.steals").add(taken.saturating_sub(fair_share) as u64);
}

static ITEMS_PER_WORKER: dh_obs::HistogramCell =
    dh_obs::HistogramCell::new("exec.pool.items_per_worker");
static CHUNKS_PER_WORKER: dh_obs::HistogramCell =
    dh_obs::HistogramCell::new("exec.pool.chunks_per_worker");

/// Reassembles `(index, value)` pairs produced by the workers into a
/// dense index-ordered vector.
fn assemble<U>(n: usize, tagged: Vec<(usize, U)>) -> Vec<U> {
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (index, value) in tagged {
        debug_assert!(slots[index].is_none(), "item {index} produced twice");
        slots[index] = Some(value);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| slot.unwrap_or_else(|| panic!("item {index} never produced")))
        .collect()
}

/// Maps `f` over `0..n` in parallel; `out[i] == f(i)` exactly as in the
/// serial loop, at any thread count.
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = worker_count(n);
    dh_obs::counter!("exec.pool.par_maps").incr();
    if workers <= 1 {
        observe_worker_share(&ITEMS_PER_WORKER, n, n);
        return (0..n).map(f).collect();
    }
    let fair_share = n.div_ceil(workers);
    let next = AtomicUsize::new(0);
    let tagged = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        local.push((index, f(index)));
                    }
                    observe_worker_share(&ITEMS_PER_WORKER, local.len(), fair_share);
                    local
                })
            })
            .collect();
        let mut tagged = Vec::with_capacity(n);
        for handle in handles {
            tagged.extend(handle.join().expect("worker panicked"));
        }
        tagged
    });
    assemble(n, tagged)
}

/// Parallel map over a slice; `out[i] == f(&items[i])`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

/// Parallel map with a per-item deterministic RNG stream: item `i`
/// receives `seeded_stream_rng(root, label, i)`, so output is
/// bit-identical to the serial loop at any thread count.
pub fn par_map_seeded<U, F>(root: u64, label: &str, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize, StdRng) -> U + Sync,
{
    par_map_indexed(n, |i| {
        f(i, dh_units::rng::seeded_stream_rng(root, label, i as u64))
    })
}

/// Parallel map over `0..n` whose results are folded **in index order**
/// on the calling thread: returns the accumulator after
/// `fold(fold(init, 0, f(0)), 1, f(1)) …` exactly as the serial loop
/// would produce it, at any thread count.
///
/// Unlike [`par_map_indexed`] the mapped values are never collected into
/// a `Vec`: workers stream `(index, value)` pairs over a channel and the
/// caller holds only the out-of-order window (typically a few items, at
/// worst the items produced while the slowest item blocks the fold).
/// This is the streaming-aggregation primitive the fleet layer leans on:
/// a million mapped shards fold into O(1) accumulator state.
///
/// `fold` runs on the calling thread, so it may freely capture `&mut`
/// state (checkpoint writers, streaming accumulators) without `Sync`.
pub fn par_map_fold<U, A, F, G>(n: usize, f: F, init: A, mut fold: G) -> A
where
    U: Send,
    F: Fn(usize) -> U + Sync,
    G: FnMut(A, usize, U) -> A,
{
    let workers = worker_count(n);
    dh_obs::counter!("exec.pool.par_map_folds").incr();
    if workers <= 1 {
        observe_worker_share(&ITEMS_PER_WORKER, n, n);
        return (0..n).fold(init, |acc, i| {
            let value = f(i);
            fold(acc, i, value)
        });
    }
    let fair_share = n.div_ceil(workers);
    let next = AtomicUsize::new(0);
    // Reorder-window backpressure: a worker may start an item at most
    // `ahead` indices past the fold cursor. Without this, one slow
    // low-index item lets the fast workers race through the entire
    // remaining range and park every result in the reorder window —
    // O(n) buffering on exactly the skewed workloads the
    // self-scheduling exists for. With it, the window (plus the channel)
    // holds O(workers) values no matter how skewed the item costs are.
    let ahead = workers * 2;
    let cursor = Mutex::new((0usize, false)); // (items folded, receiver gone)
    let advanced = std::sync::Condvar::new();
    let relock = std::sync::PoisonError::into_inner;
    std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, U)>(workers * 2);
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            let cursor = &cursor;
            let advanced = &advanced;
            scope.spawn(move || {
                let mut taken = 0usize;
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    if index >= ahead {
                        let mut state = cursor.lock().unwrap_or_else(relock);
                        while !state.1 && index >= state.0 + ahead {
                            state = advanced.wait(state).unwrap_or_else(relock);
                        }
                        if state.1 {
                            // The receiver is gone: the caller's fold
                            // panicked. Stop working.
                            break;
                        }
                    }
                    taken += 1;
                    // A send fails only when the receiver is gone, which
                    // means the caller's fold panicked; just stop working.
                    if tx.send((index, f(index))).is_err() {
                        break;
                    }
                }
                observe_worker_share(&ITEMS_PER_WORKER, taken, fair_share);
            });
        }
        drop(tx);

        // Wakes every backpressure-parked worker when the receiver exits,
        // normally or by unwinding out of a panicked fold.
        struct ReceiverGone<'a>(&'a Mutex<(usize, bool)>, &'a std::sync::Condvar);
        impl Drop for ReceiverGone<'_> {
            fn drop(&mut self) {
                self.0
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .1 = true;
                self.1.notify_all();
            }
        }
        let _gone = ReceiverGone(&cursor, &advanced);

        // Reorder window: a ring of slots where `window[index − expect]`
        // parks the value for `index` until every earlier index has been
        // folded. Unlike a map keyed by index, the ring's backing buffer
        // is reused for the whole run — zero allocations in steady state,
        // one growth per high-water mark (bounded by `ahead` plus the
        // channel depth, not by `n`).
        let mut acc = init;
        let mut window: std::collections::VecDeque<Option<U>> = std::collections::VecDeque::new();
        let mut expect = 0usize;
        let mut published = 0usize;
        for (index, value) in rx {
            let offset = index - expect;
            if offset >= window.len() {
                window.resize_with(offset + 1, || None);
            }
            debug_assert!(window[offset].is_none(), "item {index} produced twice");
            window[offset] = Some(value);
            while let Some(Some(_)) = window.front() {
                let value = window.pop_front().flatten().expect("front checked");
                acc = fold(acc, expect, value);
                expect += 1;
            }
            if expect != published {
                cursor.lock().unwrap_or_else(relock).0 = expect;
                advanced.notify_all();
                published = expect;
            }
        }
        debug_assert!(
            window.iter().all(Option::is_none),
            "worker skipped an index"
        );
        acc
    })
}

/// Fallible parallel map: `Ok(out)` with `out[i] == f(&items[i])?`, or
/// the error of the **lowest-index** failing item (deterministic even
/// though workers race).
///
/// Work hand-out stops after the first observed error; because the
/// popped items always form a prefix of the index range, the
/// lowest-index error among completed items is the same in every run.
pub fn par_try_map<T, U, E, F>(items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let mut tagged = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        let result = f(&items[index]);
                        if result.is_err() {
                            stop.store(true, Ordering::Relaxed);
                        }
                        local.push((index, result));
                    }
                    local
                })
            })
            .collect();
        let mut tagged = Vec::with_capacity(n);
        for handle in handles {
            tagged.extend(handle.join().expect("worker panicked"));
        }
        tagged
    });

    tagged.sort_by_key(|(index, _)| *index);
    let mut out = Vec::with_capacity(n);
    for (index, result) in tagged {
        match result {
            Ok(value) => {
                debug_assert_eq!(index, out.len(), "hole before item {index}");
                out.push(value);
            }
            Err(error) => return Err(error),
        }
    }
    assert_eq!(out.len(), n, "parallel map lost items without an error");
    Ok(out)
}

/// Runs `f` over fixed-size chunks of `items` in parallel, returning the
/// per-chunk results **in chunk order**.
///
/// Chunk boundaries depend only on `chunk_size`, so a serial in-order
/// fold over the returned vector is bit-identical at any thread count.
/// Chunks are self-scheduled one at a time for load balance.
pub fn par_chunks_mut<T, U, F>(items: &mut [T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut [T]) -> U + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = items.len().div_ceil(chunk_size);
    let workers = worker_count(n_chunks);
    if workers <= 1 {
        observe_worker_share(&CHUNKS_PER_WORKER, n_chunks, n_chunks);
        return items
            .chunks_mut(chunk_size)
            .enumerate()
            .map(|(i, c)| f(i, c))
            .collect();
    }
    let fair_share = n_chunks.div_ceil(workers);
    type ChunkQueue<'a, T> = Mutex<Vec<Option<(usize, &'a mut [T])>>>;
    let queue: ChunkQueue<T> =
        Mutex::new(items.chunks_mut(chunk_size).enumerate().map(Some).collect());
    let next = AtomicUsize::new(0);
    let tagged = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= n_chunks {
                            break;
                        }
                        let (index, chunk) = queue.lock().expect("chunk queue poisoned")[slot]
                            .take()
                            .expect("chunk taken twice");
                        local.push((index, f(index, chunk)));
                    }
                    observe_worker_share(&CHUNKS_PER_WORKER, local.len(), fair_share);
                    local
                })
            })
            .collect();
        let mut tagged = Vec::with_capacity(n_chunks);
        for handle in handles {
            tagged.extend(handle.join().expect("worker panicked"));
        }
        tagged
    });
    assemble(n_chunks, tagged)
}

/// Runs `f` over paired fixed-size chunks of two equal-length columns in
/// parallel, returning the per-chunk results **in chunk order**.
///
/// This is the structure-of-arrays companion to [`par_chunks_mut`]: chunk
/// `i` of `a` and chunk `i` of `b` cover the same index range
/// `[i * chunk_size, …)`, so a kernel can update two columns of the same
/// logical records in one pass (read-only columns are best captured by
/// the closure and sliced with the same offset). Chunk boundaries depend
/// only on `chunk_size`, making results bit-identical at any thread
/// count; chunks are self-scheduled one at a time for load balance.
pub fn par_chunks_mut2<A, B, U, F>(a: &mut [A], b: &mut [B], chunk_size: usize, f: F) -> Vec<U>
where
    A: Send,
    B: Send,
    U: Send,
    F: Fn(usize, &mut [A], &mut [B]) -> U + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    assert_eq!(a.len(), b.len(), "paired columns must have equal length");
    let n_chunks = a.len().div_ceil(chunk_size);
    let workers = worker_count(n_chunks);
    if workers <= 1 {
        observe_worker_share(&CHUNKS_PER_WORKER, n_chunks, n_chunks);
        return a
            .chunks_mut(chunk_size)
            .zip(b.chunks_mut(chunk_size))
            .enumerate()
            .map(|(i, (ca, cb))| f(i, ca, cb))
            .collect();
    }
    let fair_share = n_chunks.div_ceil(workers);
    type PairQueue<'a, A, B> = Mutex<Vec<Option<(usize, (&'a mut [A], &'a mut [B]))>>>;
    let queue: PairQueue<A, B> = Mutex::new(
        a.chunks_mut(chunk_size)
            .zip(b.chunks_mut(chunk_size))
            .enumerate()
            .map(Some)
            .collect(),
    );
    let next = AtomicUsize::new(0);
    let tagged = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= n_chunks {
                            break;
                        }
                        let (index, (chunk_a, chunk_b)) =
                            queue.lock().expect("chunk queue poisoned")[slot]
                                .take()
                                .expect("chunk taken twice");
                        local.push((index, f(index, chunk_a, chunk_b)));
                    }
                    observe_worker_share(&CHUNKS_PER_WORKER, local.len(), fair_share);
                    local
                })
            })
            .collect();
        let mut tagged = Vec::with_capacity(n_chunks);
        for handle in handles {
            tagged.extend(handle.join().expect("worker panicked"));
        }
        tagged
    });
    assemble(n_chunks, tagged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Serializes tests that mutate the global thread-count override.
    fn override_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn par_map_matches_serial() {
        let _guard = override_guard();
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 7] {
            set_max_threads(Some(threads));
            assert_eq!(par_map(&items, |x| x * x + 1), serial);
        }
        set_max_threads(None);
    }

    #[test]
    fn seeded_map_is_thread_count_invariant() {
        let _guard = override_guard();
        let run = |threads| {
            set_max_threads(Some(threads));
            par_map_seeded(42, "invariance", 64, |i, mut rng| {
                // Skewed cost: let some items draw far more than others.
                let draws = 1 + (i % 7) * 50;
                (0..draws).map(|_| rng.gen::<f64>()).sum::<f64>()
            })
        };
        let one = run(1);
        let four = run(4);
        let eight = run(8);
        set_max_threads(None);
        assert_eq!(one, four);
        assert_eq!(one, eight);
    }

    #[test]
    fn map_fold_folds_in_index_order_at_any_thread_count() {
        let _guard = override_guard();
        // An order-sensitive fold (sequence hash): any out-of-order or
        // dropped item changes the result.
        let serial: u64 =
            (0..311u64).fold(7, |acc, i| acc.wrapping_mul(31).wrapping_add(i * i + 1));
        for threads in [1, 3, 8] {
            set_max_threads(Some(threads));
            let folded = par_map_fold(
                311,
                |i| (i as u64) * (i as u64) + 1,
                7u64,
                |acc, i, v| {
                    assert_eq!(v, (i as u64) * (i as u64) + 1);
                    acc.wrapping_mul(31).wrapping_add(v)
                },
            );
            assert_eq!(folded, serial);
        }
        set_max_threads(None);
    }

    #[test]
    fn map_fold_window_stays_bounded_when_item_zero_is_slow() {
        let _guard = override_guard();
        let workers = 4;
        set_max_threads(Some(workers));
        // Worst case for the reorder window: item 0 stalls the fold while
        // every other item is instant. Count values that exist but have
        // not been folded (channel + window occupancy); without the
        // fold-cursor backpressure the fast workers would race through
        // all 63 remaining items and the peak would be ~n.
        let n = 64usize;
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let sum = par_map_fold(
            n,
            |i| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(40));
                }
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                i
            },
            0usize,
            |acc, _, v| {
                live.fetch_sub(1, Ordering::SeqCst);
                acc + v
            },
        );
        set_max_threads(None);
        assert_eq!(sum, n * (n - 1) / 2);
        // Every unfolded value was started while its index was within
        // `ahead = workers * 2` of the fold cursor, so at most `ahead`
        // values can be live at once (+1 slop for the count/fold race).
        let bound = workers * 2 + 1;
        let seen = peak.load(Ordering::SeqCst);
        assert!(
            seen <= bound,
            "reorder window buffered {seen} values (bound {bound})"
        );
    }

    #[test]
    fn map_fold_handles_empty_and_single_item_ranges() {
        let _guard = override_guard();
        assert_eq!(par_map_fold(0, |i| i, 99usize, |a, _, v| a + v), 99);
        assert_eq!(par_map_fold(1, |i| i + 5, 0usize, |a, _, v| a + v), 5);
    }

    #[test]
    fn try_map_reports_lowest_index_error() {
        let _guard = override_guard();
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 4] {
            set_max_threads(Some(threads));
            let result: Result<Vec<usize>, usize> =
                par_try_map(&items, |&i| if i == 13 || i == 57 { Err(i) } else { Ok(i) });
            assert_eq!(result.unwrap_err(), 13);
            let ok: Result<Vec<usize>, usize> = par_try_map(&items, |&i| Ok(i * 2));
            assert_eq!(ok.unwrap(), items.iter().map(|i| i * 2).collect::<Vec<_>>());
        }
        set_max_threads(None);
    }

    #[test]
    fn chunked_fold_is_thread_count_invariant() {
        let _guard = override_guard();
        let run = |threads| {
            set_max_threads(Some(threads));
            let mut data: Vec<f64> = (0..1000).map(|i| f64::from(i) * 0.25).collect();
            let partials = par_chunks_mut(&mut data, 64, |_, chunk| {
                let mut sum = 0.0;
                for x in chunk.iter_mut() {
                    *x = x.sqrt();
                    sum += *x;
                }
                sum
            });
            // In-order fold: deterministic float summation.
            (data, partials.into_iter().fold(0.0, |acc, p| acc + p))
        };
        let (data1, sum1) = run(1);
        let (data8, sum8) = run(8);
        set_max_threads(None);
        assert_eq!(data1, data8);
        assert_eq!(sum1.to_bits(), sum8.to_bits());
    }

    #[test]
    fn paired_chunks_share_boundaries_and_stay_invariant() {
        let _guard = override_guard();
        let run = |threads| {
            set_max_threads(Some(threads));
            let mut soft: Vec<f64> = (0..1000).map(|i| f64::from(i) * 0.001).collect();
            let mut hard: Vec<f64> = (0..1000).map(|i| f64::from(i) * 0.002).collect();
            let rates: Vec<f64> = (0..1000).map(|i| 1.0 + f64::from(i % 13)).collect();
            let spans = par_chunks_mut2(&mut soft, &mut hard, 64, |ci, cs, ch| {
                assert_eq!(cs.len(), ch.len());
                let offset = ci * 64;
                for (j, (s, h)) in cs.iter_mut().zip(ch.iter_mut()).enumerate() {
                    let rate = rates[offset + j];
                    let moved = *s / rate;
                    *s -= moved;
                    *h += moved;
                }
                (offset, offset + cs.len())
            });
            // Chunk index ranges must tile 0..n in order.
            let mut expect_start = 0;
            for (start, end) in &spans {
                assert_eq!(*start, expect_start);
                expect_start = *end;
            }
            assert_eq!(expect_start, 1000);
            (soft, hard)
        };
        let (s1, h1) = run(1);
        let (s8, h8) = run(8);
        set_max_threads(None);
        assert_eq!(s1, s8);
        assert_eq!(h1, h8);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn paired_chunks_reject_mismatched_columns() {
        let mut a = vec![0.0; 10];
        let mut b = vec![0.0; 9];
        par_chunks_mut2(&mut a, &mut b, 4, |_, _, _| ());
    }

    #[test]
    fn empty_and_single_inputs() {
        let _guard = override_guard();
        set_max_threads(Some(4));
        assert!(par_map_indexed(0, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, |i| i + 10), vec![10]);
        let mut nothing: Vec<u8> = Vec::new();
        assert!(par_chunks_mut(&mut nothing, 8, |_, c| c.len()).is_empty());
        set_max_threads(None);
    }

    #[test]
    fn override_beats_env_detection() {
        let _guard = override_guard();
        set_max_threads(Some(3));
        assert_eq!(max_threads(), 3);
        set_max_threads(None);
        assert!(max_threads() >= 1);
    }
}
