//! Compute-once memoization for expensive fitted artifacts.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default capacity of a [`Memo`] built with [`Memo::new`]: far above what
/// any repro binary or test needs (a handful of calibrations), low enough
/// that a long-running sweep process churning through distinct keys cannot
/// grow the cache without bound.
pub const MEMO_DEFAULT_CAPACITY: usize = 64;

/// One cached value plus the logical time it was last returned.
struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
}

/// Map contents plus the logical clock driving recency-based eviction.
struct State<K, V> {
    entries: HashMap<K, Entry<V>>,
    tick: u64,
}

/// A process-wide, **bounded** compute-once cache keyed by the artifact's
/// full parameterization.
///
/// Designed for a small number of very expensive values (e.g. the CET
/// emission-CDF knot fit, a multi-second simulated-protocol iteration):
/// the map lock is held **across** the compute, so two racing callers
/// with the same key never fit twice — the loser blocks and receives the
/// winner's [`Arc`]. Do not use it for cheap values with many distinct
/// keys; the coarse lock would serialize them.
///
/// The cache holds at most `capacity` values
/// ([`MEMO_DEFAULT_CAPACITY`] unless built with [`Memo::bounded`]). When
/// an insert would exceed it, the least-recently-*returned* value is
/// evicted, so a long-running sweep process that keeps constructing
/// ensembles for new parameter points cannot grow the cache without
/// limit — evicted values stay alive for existing holders of their
/// [`Arc`], only the cache's reference is dropped.
///
/// `new` and `bounded` are `const`, so a memo can live in a `static`:
///
/// ```
/// use dh_exec::Memo;
///
/// static FITS: Memo<u32, Vec<f64>> = Memo::bounded(16);
/// let first = FITS.get_or_insert_with(9901, || vec![0.5; 4]);
/// let second = FITS.get_or_insert_with(9901, || unreachable!("cached"));
/// assert!(std::sync::Arc::ptr_eq(&first, &second));
/// ```
pub struct Memo<K, V> {
    map: OnceLock<Mutex<State<K, V>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Eq + Hash, V> Memo<K, V> {
    /// An empty cache with the default capacity; usable in `static` items.
    pub const fn new() -> Self {
        Self::bounded(MEMO_DEFAULT_CAPACITY)
    }

    /// An empty cache holding at most `capacity` values (recency-evicted
    /// beyond that). A capacity of 0 is treated as 1.
    pub const fn bounded(capacity: usize) -> Self {
        let capacity = if capacity == 0 { 1 } else { capacity };
        Self {
            map: OnceLock::new(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn state(&self) -> &Mutex<State<K, V>> {
        self.map.get_or_init(|| {
            Mutex::new(State {
                entries: HashMap::new(),
                tick: 0,
            })
        })
    }

    /// Returns the cached value for `key`, computing and caching it with
    /// `compute` on first use.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        match self.try_get_or_insert_with(key, || Ok::<V, std::convert::Infallible>(compute())) {
            Ok(value) => value,
        }
    }

    /// Fallible variant of [`Memo::get_or_insert_with`]: errors are
    /// returned to the caller and nothing is cached, so a later call
    /// retries the compute.
    pub fn try_get_or_insert_with<E>(
        &self,
        key: K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let mut state = self
            .state()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        state.tick += 1;
        let now = state.tick;
        if let Some(entry) = state.entries.get_mut(&key) {
            entry.last_used = now;
            self.hits.fetch_add(1, Ordering::Relaxed);
            dh_obs::counter!("exec.memo.hits").incr();
            return Ok(Arc::clone(&entry.value));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        dh_obs::counter!("exec.memo.misses").incr();
        let value = Arc::new(compute()?);
        if state.entries.len() >= self.capacity {
            // Evict the least-recently-returned entry. O(len) scan, but
            // the cache is small by construction and inserts are rare
            // next to the (multi-second) computes they follow.
            if let Some(stale) = state
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(k, _)| k)
            {
                // HashMap has no remove-by-reference without cloning the
                // key, so re-find it via a raw pointer comparison-free
                // retain pass keyed on the recorded tick.
                let stale_tick = state.entries[stale].last_used;
                state
                    .entries
                    .retain(|_, entry| entry.last_used != stale_tick);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                dh_obs::counter!("exec.memo.evictions").incr();
            }
        }
        state.entries.insert(
            key,
            Entry {
                value: Arc::clone(&value),
                last_used: now,
            },
        );
        Ok(value)
    }

    /// Lookups served from cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute (successful or not).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Values evicted to keep the cache within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The maximum number of cached values.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached values (never exceeds [`Memo::capacity`]).
    pub fn len(&self) -> usize {
        self.state()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .entries
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached value (counters are kept).
    pub fn clear(&self) {
        self.state()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .entries
            .clear();
    }
}

impl<K: Eq + Hash, V> Default for Memo<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_once_per_key() {
        let memo: Memo<u8, u64> = Memo::new();
        let mut computes = 0;
        for _ in 0..3 {
            memo.get_or_insert_with(1, || {
                computes += 1;
                42
            });
        }
        assert_eq!(computes, 1);
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.hits(), 2);
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.capacity(), MEMO_DEFAULT_CAPACITY);
    }

    #[test]
    fn racing_callers_share_one_compute() {
        static MEMO: Memo<u32, u64> = Memo::new();
        static COMPUTES: AtomicU64 = AtomicU64::new(0);
        let values: Vec<Arc<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        MEMO.get_or_insert_with(7, || {
                            COMPUTES.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            99
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(COMPUTES.load(Ordering::SeqCst), 1);
        assert!(values.iter().all(|v| **v == 99));
        assert!(values
            .windows(2)
            .all(|pair| Arc::ptr_eq(&pair[0], &pair[1])));
    }

    #[test]
    fn counters_stay_consistent_under_parallel_access() {
        // 8 threads hammer a bounded memo with overlapping key ranges.
        // Whatever interleaving happens, the accounting must balance:
        // every lookup is exactly one hit or one miss, and the cache can
        // never hold more than (misses − evictions) live entries.
        const THREADS: u64 = 8;
        const LOOKUPS: u64 = 1000;
        static MEMO: Memo<u64, u64> = Memo::bounded(16);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    for i in 0..LOOKUPS {
                        // 64 distinct keys, skewed so threads collide.
                        let key = (t + i) % 64;
                        let v = MEMO.get_or_insert_with(key, || key * 3);
                        assert_eq!(*v, key * 3);
                    }
                });
            }
        });
        assert_eq!(MEMO.hits() + MEMO.misses(), THREADS * LOOKUPS);
        assert!(MEMO.misses() >= 1, "first lookup of each key misses");
        assert_eq!(MEMO.len() as u64, MEMO.misses() - MEMO.evictions());
        assert!(MEMO.len() <= MEMO.capacity());
        assert!(
            MEMO.evictions() >= MEMO.misses() - 64,
            "64 keys through a 16-slot cache must evict: {} misses, {} evictions",
            MEMO.misses(),
            MEMO.evictions()
        );
    }

    #[test]
    fn errors_are_not_cached() {
        let memo: Memo<u8, u8> = Memo::new();
        let err: Result<_, &str> = memo.try_get_or_insert_with(1, || Err("fit diverged"));
        assert!(err.is_err());
        assert!(memo.is_empty());
        let ok = memo
            .try_get_or_insert_with(1, || Ok::<u8, &str>(5))
            .unwrap();
        assert_eq!(*ok, 5);
        assert_eq!(memo.misses(), 2);
    }

    #[test]
    fn clear_resets_contents_only() {
        let memo: Memo<u8, u8> = Memo::new();
        memo.get_or_insert_with(1, || 1);
        memo.get_or_insert_with(1, || 1);
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.hits(), 1);
        memo.get_or_insert_with(1, || 2);
        assert_eq!(memo.misses(), 2);
    }

    #[test]
    fn capacity_bounds_the_cache() {
        let memo: Memo<u32, u32> = Memo::bounded(3);
        for k in 0..10 {
            memo.get_or_insert_with(k, || k * 100);
        }
        assert_eq!(memo.len(), 3);
        assert_eq!(memo.evictions(), 7);
        assert_eq!(memo.capacity(), 3);
    }

    #[test]
    fn eviction_prefers_the_least_recently_used_key() {
        let memo: Memo<u32, u32> = Memo::bounded(2);
        memo.get_or_insert_with(1, || 10);
        memo.get_or_insert_with(2, || 20);
        // Touch key 1 so key 2 becomes the stale one.
        memo.get_or_insert_with(1, || unreachable!("cached"));
        memo.get_or_insert_with(3, || 30);
        assert_eq!(memo.len(), 2);
        // Key 1 must still be cached; key 2 must recompute.
        let misses_before = memo.misses();
        memo.get_or_insert_with(1, || unreachable!("still cached"));
        assert_eq!(memo.misses(), misses_before);
        let mut recomputed = false;
        memo.get_or_insert_with(2, || {
            recomputed = true;
            21
        });
        assert!(recomputed, "evicted key must recompute");
    }

    #[test]
    fn zero_capacity_is_treated_as_one() {
        let memo: Memo<u8, u8> = Memo::bounded(0);
        assert_eq!(memo.capacity(), 1);
        memo.get_or_insert_with(1, || 1);
        memo.get_or_insert_with(2, || 2);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn evicted_values_survive_for_existing_holders() {
        let memo: Memo<u8, u8> = Memo::bounded(1);
        let first = memo.get_or_insert_with(1, || 11);
        memo.get_or_insert_with(2, || 22);
        assert_eq!(*first, 11, "Arc keeps the evicted value alive");
        assert_eq!(memo.len(), 1);
    }
}
