//! Compute-once memoization for expensive fitted artifacts.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A process-wide compute-once cache keyed by the artifact's full
/// parameterization.
///
/// Designed for a small number of very expensive values (e.g. the CET
/// emission-CDF knot fit, a multi-second simulated-protocol iteration):
/// the map lock is held **across** the compute, so two racing callers
/// with the same key never fit twice — the loser blocks and receives the
/// winner's [`Arc`]. Do not use it for cheap values with many distinct
/// keys; the coarse lock would serialize them.
///
/// `new` is `const`, so a memo can live in a `static`:
///
/// ```
/// use dh_exec::Memo;
///
/// static FITS: Memo<u32, Vec<f64>> = Memo::new();
/// let first = FITS.get_or_insert_with(9901, || vec![0.5; 4]);
/// let second = FITS.get_or_insert_with(9901, || unreachable!("cached"));
/// assert!(std::sync::Arc::ptr_eq(&first, &second));
/// ```
pub struct Memo<K, V> {
    map: OnceLock<Mutex<HashMap<K, Arc<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V> Memo<K, V> {
    /// An empty cache; usable in `static` items.
    pub const fn new() -> Self {
        Self {
            map: OnceLock::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn map(&self) -> &Mutex<HashMap<K, Arc<V>>> {
        self.map.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Returns the cached value for `key`, computing and caching it with
    /// `compute` on first use.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        match self.try_get_or_insert_with(key, || Ok::<V, std::convert::Infallible>(compute())) {
            Ok(value) => value,
        }
    }

    /// Fallible variant of [`Memo::get_or_insert_with`]: errors are
    /// returned to the caller and nothing is cached, so a later call
    /// retries the compute.
    pub fn try_get_or_insert_with<E>(
        &self,
        key: K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        let mut map = self
            .map()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(value) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(value));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute()?);
        map.insert(key, Arc::clone(&value));
        Ok(value)
    }

    /// Lookups served from cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute (successful or not).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached values.
    pub fn len(&self) -> usize {
        self.map()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached value (counters are kept).
    pub fn clear(&self) {
        self.map()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clear();
    }
}

impl<K: Eq + Hash, V> Default for Memo<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_once_per_key() {
        let memo: Memo<u8, u64> = Memo::new();
        let mut computes = 0;
        for _ in 0..3 {
            memo.get_or_insert_with(1, || {
                computes += 1;
                42
            });
        }
        assert_eq!(computes, 1);
        assert_eq!(memo.misses(), 1);
        assert_eq!(memo.hits(), 2);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn racing_callers_share_one_compute() {
        static MEMO: Memo<u32, u64> = Memo::new();
        static COMPUTES: AtomicU64 = AtomicU64::new(0);
        let values: Vec<Arc<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        MEMO.get_or_insert_with(7, || {
                            COMPUTES.fetch_add(1, Ordering::SeqCst);
                            // Widen the race window.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            99
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(COMPUTES.load(Ordering::SeqCst), 1);
        assert!(values.iter().all(|v| **v == 99));
        assert!(values
            .windows(2)
            .all(|pair| Arc::ptr_eq(&pair[0], &pair[1])));
    }

    #[test]
    fn errors_are_not_cached() {
        let memo: Memo<u8, u8> = Memo::new();
        let err: Result<_, &str> = memo.try_get_or_insert_with(1, || Err("fit diverged"));
        assert!(err.is_err());
        assert!(memo.is_empty());
        let ok = memo
            .try_get_or_insert_with(1, || Ok::<u8, &str>(5))
            .unwrap();
        assert_eq!(*ok, 5);
        assert_eq!(memo.misses(), 2);
    }

    #[test]
    fn clear_resets_contents_only() {
        let memo: Memo<u8, u8> = Memo::new();
        memo.get_or_insert_with(1, || 1);
        memo.get_or_insert_with(1, || 1);
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.hits(), 1);
        memo.get_or_insert_with(1, || 2);
        assert_eq!(memo.misses(), 2);
    }
}
