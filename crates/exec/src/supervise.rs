//! Supervised parallel fold: worker panics become structured errors,
//! failing shards retry with bounded exponential backoff, and shards
//! that keep failing are quarantined so the run completes degraded
//! instead of aborting.
//!
//! The fold structure is identical to [`crate::par_map_fold`] — workers
//! stream `(index, result)` pairs and the caller folds successes in
//! index order — so a supervised run whose tasks never panic performs
//! *exactly* the same fold sequence and produces bit-identical
//! accumulator state. That property is what lets the fleet layer route
//! every run (chaos or production) through one code path.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;
use std::time::Duration;

/// Bounded-retry policy for supervised shard execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per shard (first try included). Clamped to at
    /// least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts with 10 ms → 500 ms exponential backoff.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` attempts and no backoff sleeps —
    /// what tests and deterministic chaos replays want.
    pub fn immediate(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The sleep before retry number `retry` (1-based):
    /// `base * 2^(retry-1)`, capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let doublings = retry.saturating_sub(1).min(20);
        self.base_backoff
            .checked_mul(1 << doublings)
            .map_or(self.max_backoff, |d| d.min(self.max_backoff))
    }
}

/// A shard that exhausted its retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    /// The item index that kept failing.
    pub index: usize,
    /// Attempts made (equals the policy's `max_attempts`).
    pub attempts: u32,
    /// Panic message from the final attempt.
    pub message: String,
}

impl core::fmt::Display for ShardError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "shard {} failed after {} attempts: {}",
            self.index, self.attempts, self.message
        )
    }
}

impl std::error::Error for ShardError {}

/// What a supervised fold produced: the accumulator over every
/// successful shard, plus the shards that were quarantined and how many
/// attempts had to be retried along the way.
#[derive(Debug)]
pub struct SupervisedOutcome<A> {
    /// The fold result over all non-quarantined shards, in index order.
    pub acc: A,
    /// Quarantined shards, sorted by index.
    pub failures: Vec<ShardError>,
    /// Attempts that panicked and were re-executed (across all shards,
    /// whether or not the shard eventually succeeded).
    pub retries: u64,
}

thread_local! {
    /// True while the current thread is inside a supervised
    /// `catch_unwind`, so the panic hook stays quiet for
    /// injected/expected panics.
    static SUPERVISED: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once per process) a panic hook that suppresses the default
/// stderr backtrace for panics the supervisor is about to catch, and
/// chains to the previous hook for everything else.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPERVISED.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Renders a caught panic payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs `f(index, attempt)` under `catch_unwind` with the retry policy;
/// returns the value or the final failure, plus how many attempts were
/// retried.
fn run_attempts<U, F>(f: &F, index: usize, retry: &RetryPolicy) -> (Result<U, ShardError>, u64)
where
    F: Fn(usize, u32) -> U,
{
    let max_attempts = retry.max_attempts.max(1);
    let mut failed = 0u32;
    loop {
        let attempt = failed + 1;
        SUPERVISED.with(|flag| flag.set(true));
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(index, attempt)));
        SUPERVISED.with(|flag| flag.set(false));
        match result {
            Ok(value) => return (Ok(value), u64::from(failed)),
            Err(payload) => {
                dh_obs::counter!("exec.supervisor.panics").incr();
                failed += 1;
                if failed >= max_attempts {
                    return (
                        Err(ShardError {
                            index,
                            attempts: failed,
                            message: panic_message(payload),
                        }),
                        u64::from(failed - 1),
                    );
                }
                dh_obs::counter!("exec.supervisor.retries").incr();
                let backoff = retry.backoff(failed);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
        }
    }
}

/// Supervised version of [`crate::par_map_fold`]: maps `f(index,
/// attempt)` over `0..n`, folding successes **in index order** on the
/// calling thread, converting panics into [`ShardError`]s with bounded
/// retry, and quarantining shards that exhaust their attempts.
///
/// `attempt` is 1-based and increments on retry, so deterministic fault
/// injection keyed on `(index, attempt)` can model transient failures
/// that succeed when retried.
///
/// The run always completes: quarantined shards are simply absent from
/// the fold and enumerated in [`SupervisedOutcome::failures`] (sorted
/// by index, identical at any thread count). When no task panics the
/// fold sequence — and therefore the accumulator — is bit-identical to
/// [`crate::par_map_fold`].
pub fn par_map_fold_supervised<U, A, F, G>(
    n: usize,
    f: F,
    init: A,
    mut fold: G,
    retry: &RetryPolicy,
) -> SupervisedOutcome<A>
where
    U: Send,
    F: Fn(usize, u32) -> U + Sync,
    G: FnMut(A, usize, U) -> A,
{
    install_quiet_hook();
    dh_obs::counter!("exec.pool.par_map_folds").incr();
    let workers = crate::max_threads().min(n);
    let mut failures = Vec::new();
    let mut retries = 0u64;

    let acc = if workers <= 1 {
        let mut acc = init;
        for index in 0..n {
            let (result, retried) = run_attempts(&f, index, retry);
            retries += retried;
            match result {
                Ok(value) => acc = fold(acc, index, value),
                Err(error) => failures.push(error),
            }
        }
        acc
    } else {
        let next = AtomicUsize::new(0);
        // Reorder backpressure, mirroring `par_map_fold`: a worker may
        // start an item at most `ahead` indices past the fold cursor, so
        // one slow (or retrying) low-index shard cannot make the fast
        // workers buffer the whole remaining range in `pending`.
        let ahead = workers * 2;
        let cursor = std::sync::Mutex::new((0usize, false)); // (folded, receiver gone)
        let advanced = std::sync::Condvar::new();
        let relock = std::sync::PoisonError::into_inner;
        std::thread::scope(|scope| {
            type Tagged<U> = (usize, Result<U, ShardError>, u64);
            let (tx, rx) = std::sync::mpsc::sync_channel::<Tagged<U>>(workers * 2);
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                let cursor = &cursor;
                let advanced = &advanced;
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    if index >= ahead {
                        let mut state = cursor.lock().unwrap_or_else(relock);
                        while !state.1 && index >= state.0 + ahead {
                            state = advanced.wait(state).unwrap_or_else(relock);
                        }
                        if state.1 {
                            break;
                        }
                    }
                    let (result, retried) = run_attempts(f, index, retry);
                    // A send fails only when the caller's fold panicked;
                    // just stop working.
                    if tx.send((index, result, retried)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            // Wakes backpressure-parked workers when the receiver exits,
            // normally or by unwinding out of a panicked fold.
            struct ReceiverGone<'a>(&'a std::sync::Mutex<(usize, bool)>, &'a std::sync::Condvar);
            impl Drop for ReceiverGone<'_> {
                fn drop(&mut self) {
                    self.0
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .1 = true;
                    self.1.notify_all();
                }
            }
            let _gone = ReceiverGone(&cursor, &advanced);

            let mut acc = init;
            let mut pending: std::collections::BTreeMap<usize, Result<U, ShardError>> =
                std::collections::BTreeMap::new();
            let mut expect = 0usize;
            let mut published = 0usize;
            for (index, result, retried) in rx {
                retries += retried;
                pending.insert(index, result);
                while let Some(result) = pending.remove(&expect) {
                    match result {
                        Ok(value) => acc = fold(acc, expect, value),
                        Err(error) => failures.push(error),
                    }
                    expect += 1;
                }
                if expect != published {
                    cursor.lock().unwrap_or_else(relock).0 = expect;
                    advanced.notify_all();
                    published = expect;
                }
            }
            debug_assert!(pending.is_empty(), "worker skipped an index");
            acc
        })
    };

    dh_obs::counter!("exec.supervisor.quarantined").add(failures.len() as u64);
    SupervisedOutcome {
        acc,
        failures,
        retries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{par_map_fold, set_max_threads};
    use std::sync::Mutex;

    /// Serializes tests that mutate the global thread-count override.
    fn override_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn clean_run_matches_unsupervised_fold_bit_for_bit() {
        let _guard = override_guard();
        let task = |i: usize| (i as f64).sqrt() + 0.125;
        let plain = par_map_fold(257, task, 0.0f64, |acc, _, v| acc * 1.0000001 + v);
        for threads in [1, 4] {
            set_max_threads(Some(threads));
            let outcome = par_map_fold_supervised(
                257,
                |i, _attempt| task(i),
                0.0f64,
                |acc, _, v| acc * 1.0000001 + v,
                &RetryPolicy::default(),
            );
            assert_eq!(outcome.acc.to_bits(), plain.to_bits());
            assert!(outcome.failures.is_empty());
            assert_eq!(outcome.retries, 0);
        }
        set_max_threads(None);
    }

    #[test]
    fn persistent_panic_is_quarantined_not_fatal() {
        let _guard = override_guard();
        for threads in [1, 4] {
            set_max_threads(Some(threads));
            let outcome = par_map_fold_supervised(
                64,
                |i, _attempt| {
                    if i == 13 || i == 40 {
                        panic!("injected fault: shard {i}");
                    }
                    1u64
                },
                0u64,
                |acc, _, v| acc + v,
                &RetryPolicy::immediate(3),
            );
            assert_eq!(outcome.acc, 62, "two shards quarantined");
            let failed: Vec<usize> = outcome.failures.iter().map(|e| e.index).collect();
            assert_eq!(failed, vec![13, 40], "failures sorted by index");
            assert!(outcome.failures[0].message.contains("shard 13"));
            assert_eq!(outcome.failures[0].attempts, 3);
            // Two shards, each retried twice before quarantine.
            assert_eq!(outcome.retries, 4);
        }
        set_max_threads(None);
    }

    #[test]
    fn transient_panic_succeeds_on_retry() {
        let _guard = override_guard();
        set_max_threads(Some(2));
        let outcome = par_map_fold_supervised(
            32,
            |i, attempt| {
                // Shard 5 fails its first two attempts, then succeeds.
                if i == 5 && attempt < 3 {
                    panic!("transient wobble");
                }
                i as u64
            },
            0u64,
            |acc, _, v| acc + v,
            &RetryPolicy::immediate(3),
        );
        set_max_threads(None);
        assert!(outcome.failures.is_empty());
        assert_eq!(outcome.acc, (0..32u64).sum::<u64>());
        assert_eq!(outcome.retries, 2);
    }

    #[test]
    fn non_string_panic_payloads_are_described() {
        let _guard = override_guard();
        set_max_threads(Some(1));
        let outcome = par_map_fold_supervised(
            1,
            |_, _| -> u64 { std::panic::panic_any(42_i32) },
            0u64,
            |acc, _, v| acc + v,
            &RetryPolicy::immediate(1),
        );
        set_max_threads(None);
        assert_eq!(outcome.failures.len(), 1);
        assert!(outcome.failures[0].message.contains("non-string"));
    }

    #[test]
    fn zero_items_is_a_clean_noop() {
        let outcome = par_map_fold_supervised(
            0,
            |i, _| i,
            7usize,
            |acc, _, v| acc + v,
            &RetryPolicy::default(),
        );
        assert_eq!(outcome.acc, 7);
        assert!(outcome.failures.is_empty());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(10));
        assert_eq!(policy.backoff(2), Duration::from_millis(20));
        assert_eq!(policy.backoff(3), Duration::from_millis(35));
        assert_eq!(policy.backoff(30), Duration::from_millis(35));
    }

    #[test]
    fn zero_attempt_policy_still_runs_once() {
        let outcome = par_map_fold_supervised(
            4,
            |i, _| i,
            0usize,
            |acc, _, v| acc + v,
            &RetryPolicy::immediate(0),
        );
        assert_eq!(outcome.acc, 6);
    }
}
