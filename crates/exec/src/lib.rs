//! Deterministic parallel execution for the deep-healing Monte-Carlo
//! sweeps.
//!
//! Every headline result in this reproduction is a population statistic —
//! CET trap ensembles, EM wire populations, lifetime guardband
//! distributions — and all of them share two needs that plain thread
//! pools don't meet:
//!
//! 1. **Bit-identical output at any thread count.** Each work item draws
//!    its randomness from an RNG derived from `(base_seed, label, index)`
//!    via [`dh_units::rng::seeded_stream_rng`], never from a shared
//!    stream, and results are reassembled in index order. Running on one
//!    thread, eight threads, or under a different OS scheduler produces
//!    the same bytes.
//! 2. **Load balancing for skewed item costs.** Early-failing seeds
//!    finish orders of magnitude faster than survivors, so static
//!    chunking idles most of the pool. Work is handed out one item (or
//!    one fixed chunk) at a time from an atomic counter, so free workers
//!    always pull the next pending item.
//!
//! The [`Memo`] cache rounds this out: expensive fitted artifacts (the
//! CET emission-CDF knot fit, most prominently) are computed once per
//! distinct key and shared behind an [`std::sync::Arc`].
//!
//! Thread counts come from `DH_NUM_THREADS`, then `RAYON_NUM_THREADS`
//! (honoured for familiarity), then the machine's available parallelism;
//! [`set_max_threads`] overrides all three at runtime.

#![warn(missing_docs)]

mod memo;
mod pool;
mod supervise;

pub use memo::{Memo, MEMO_DEFAULT_CAPACITY};
pub use pool::{
    max_threads, par_chunks_mut, par_chunks_mut2, par_map, par_map_fold, par_map_indexed,
    par_map_seeded, par_try_map, set_max_threads,
};
pub use supervise::{par_map_fold_supervised, RetryPolicy, ShardError, SupervisedOutcome};
