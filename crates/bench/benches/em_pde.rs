//! Criterion benches for the EM stress-evolution PDE.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use deep_healing::prelude::*;

fn bench_pde(c: &mut Criterion) {
    let j = CurrentDensity::from_ma_per_cm2(7.96);
    c.bench_function("em/pde/advance_60min_181_nodes", |b| {
        b.iter_batched(
            EmWire::paper_wire,
            |mut wire| {
                wire.advance(Seconds::from_minutes(60.0), j);
                wire.resistance()
            },
            BatchSize::SmallInput,
        )
    });

    let mut group = c.benchmark_group("repro");
    group.sample_size(10);
    group.bench_function("fig5_full_experiment", |b| {
        b.iter(deep_healing::experiments::fig5)
    });
    group.finish();
}

fn bench_black(c: &mut Criterion) {
    let black = BlackModel::calibrated_to_paper();
    let t = Celsius::new(85.0).to_kelvin();
    c.bench_function("em/black/median_ttf", |b| {
        b.iter(|| black.median_ttf(CurrentDensity::from_ma_per_cm2(1.2), t))
    });
    c.bench_function("em/black/quantile", |b| {
        b.iter(|| black.ttf_quantile(CurrentDensity::from_ma_per_cm2(1.2), t, 0.001))
    });
}

criterion_group!(benches, bench_pde, bench_black);
criterion_main!(benches);
