//! Criterion benches for the system-level lifetime simulator (the cost of
//! the Fig. 12(b) experiment per simulated month).

use criterion::{criterion_group, criterion_main, Criterion};

use deep_healing::prelude::*;

fn bench_lifetime(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched");
    group.sample_size(10);
    for (name, policy) in [
        ("no_recovery", Policy::NoRecovery),
        ("passive_idle", Policy::PassiveIdle),
        ("periodic_deep", Policy::periodic_deep_default()),
        ("adaptive", Policy::adaptive_default()),
    ] {
        group.bench_function(format!("lifetime_1month_16cores/{name}"), |b| {
            b.iter(|| {
                let config = LifetimeConfig {
                    years: 1.0 / 12.0,
                    ..LifetimeConfig::default()
                };
                run_lifetime(&config, policy, 42).expect("valid config")
            })
        });
    }
    group.finish();
}

fn bench_system_step(c: &mut Criterion) {
    c.bench_function("sched/system_single_epoch_16cores", |b| {
        let mut system = ManyCoreSystem::new(SystemConfig::default()).expect("valid config");
        b.iter(|| system.step(Policy::periodic_deep_default()).expect("steps"))
    });
}

criterion_group!(benches, bench_lifetime, bench_system_step);
criterion_main!(benches);
