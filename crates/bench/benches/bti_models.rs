//! Criterion benches for the BTI models: the per-call costs that bound how
//! finely a system simulator can schedule recovery.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use deep_healing::bti::analytic::AnalyticBtiModel;
use deep_healing::bti::calibration::{self, TableOneTargets, DEFAULT_BETA};
use deep_healing::prelude::*;

fn bench_analytic(c: &mut Criterion) {
    let model = AnalyticBtiModel::paper_calibrated();
    c.bench_function("bti/analytic/recovery_fraction", |b| {
        b.iter(|| {
            model.recovery_fraction(
                black_box(Seconds::from_hours(24.0)),
                black_box(Seconds::from_hours(6.0)),
                black_box(RecoveryCondition::ACTIVE_ACCELERATED),
            )
        })
    });
    c.bench_function("bti/analytic/calibration_solve", |b| {
        b.iter(|| calibration::solve(black_box(&TableOneTargets::model_column()), DEFAULT_BETA))
    });
}

fn bench_device(c: &mut Criterion) {
    c.bench_function("bti/device/24h_cycle_schedule", |b| {
        b.iter_batched(
            BtiDevice::paper_calibrated,
            |mut device| {
                for _ in 0..24 {
                    device.stress(Seconds::from_hours(1.0), StressCondition::ACCELERATED);
                    device.recover(
                        Seconds::from_hours(1.0),
                        RecoveryCondition::ACTIVE_ACCELERATED,
                    );
                }
                device.delta_vth_mv()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ensemble(c: &mut Criterion) {
    let ensemble = TrapEnsemble::paper_calibrated(2000).expect("calibration converges");
    c.bench_function("bti/cet/stress_24h_2000_traps", |b| {
        b.iter_batched(
            || ensemble.clone(),
            |mut e| {
                e.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
                e.delta_vth_mv()
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("bti/cet/recover_6h_2000_traps", |b| {
        let mut stressed = ensemble.clone();
        stressed.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        b.iter_batched(
            || stressed.clone(),
            |mut e| {
                e.recover(
                    Seconds::from_hours(6.0),
                    RecoveryCondition::ACTIVE_ACCELERATED,
                );
                e.delta_vth_mv()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("repro");
    group.sample_size(10);
    group.bench_function("table1_full", |b| b.iter(deep_healing::experiments::table1));
    group.finish();
}

criterion_group!(
    benches,
    bench_analytic,
    bench_device,
    bench_ensemble,
    bench_table1
);
criterion_main!(benches);
