//! Criterion benches for the circuit nodal solver and the PDN
//! conjugate-gradient solver.

use criterion::{criterion_group, criterion_main, Criterion};

use deep_healing::pdn::grid::{PdnConfig, PdnMesh};
use deep_healing::prelude::*;

fn bench_assist(c: &mut Criterion) {
    let circuit = AssistCircuit::paper_28nm();
    for mode in Mode::ALL {
        c.bench_function(format!("circuit/assist_solve/{mode}"), |b| {
            b.iter(|| circuit.solve(mode).expect("paper circuit solves"))
        });
    }
    c.bench_function("circuit/fig10_sweep", |b| {
        b.iter(deep_healing::experiments::fig10)
    });
}

fn bench_pdn(c: &mut Criterion) {
    let small = PdnMesh::new(PdnConfig::default_chip()).expect("valid config");
    c.bench_function("pdn/solve_24x24", |b| {
        b.iter(|| small.solve_uniform_load(0.25e-3).expect("converges"))
    });

    let big = PdnMesh::new(PdnConfig {
        rows: 48,
        cols: 48,
        ..PdnConfig::default_chip()
    })
    .expect("valid config");
    let mut group = c.benchmark_group("pdn");
    group.sample_size(20);
    group.bench_function("solve_48x48", |b| {
        b.iter(|| big.solve_uniform_load(0.25e-3).expect("converges"))
    });
    group.finish();
}

criterion_group!(benches, bench_assist, bench_pdn);
criterion_main!(benches);
