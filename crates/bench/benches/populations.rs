//! Criterion benches for the statistical / network layers: wire-population
//! Monte Carlo, interconnect-network cascades, PDN wear trajectories, and
//! RO-array calibration.

use criterion::{criterion_group, criterion_main, Criterion};

use deep_healing::bti::variability::DevicePopulation;
use deep_healing::circuit::ro_array::RoArray;
use deep_healing::em::network::EmNetwork;
use deep_healing::em::population::{simulate_population, VariationModel};
use deep_healing::pdn::grid::{PdnConfig, PdnMesh};
use deep_healing::pdn::wear_loop::wear_trajectory;
use deep_healing::prelude::*;
use deep_healing::units::Amperes;

fn bench_em_population(c: &mut Criterion) {
    let mut group = c.benchmark_group("population");
    group.sample_size(10);
    group.bench_function("em_8_wires_to_failure", |b| {
        b.iter(|| {
            simulate_population(
                8,
                CurrentDensity::from_ma_per_cm2(7.96),
                VariationModel::default(),
                Seconds::from_hours(48.0),
                17,
            )
        })
    });
    group.bench_function("bti_8_devices_table1_protocol", |b| {
        b.iter(|| {
            let mut p = DevicePopulation::sample(8, 500, 0.25, 11).expect("valid population");
            p.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
            p.recover(
                Seconds::from_hours(6.0),
                RecoveryCondition::ACTIVE_ACCELERATED,
            );
            p.stats()
        })
    });
    group.finish();
}

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("network");
    group.sample_size(10);
    let supply = Amperes::new(8.0e10 * 0.4e-6 * 0.35e-6 * 320.0 / 180.0);
    group.bench_function("redundant_pair_to_disconnect", |b| {
        b.iter(|| {
            EmNetwork::redundant_pair()
                .time_to_disconnect(supply, Seconds::from_hours(120.0))
                .expect("pair fails")
        })
    });
    group.finish();
}

fn bench_wear_loop(c: &mut Criterion) {
    let mesh = PdnMesh::new(PdnConfig::default_chip()).expect("valid config");
    let mut group = c.benchmark_group("pdn");
    group.sample_size(10);
    group.bench_function("wear_trajectory_10y_12steps", |b| {
        b.iter(|| {
            wear_trajectory(
                &mesh,
                0.5e-3,
                Celsius::new(105.0).to_kelvin(),
                Fraction::clamped(0.2),
                Fraction::clamped(0.9),
                10.0,
                12,
            )
            .expect("trajectory solves")
        })
    });
    group.finish();
}

fn bench_ro_array(c: &mut Criterion) {
    c.bench_function("circuit/ro_array_4x4_calibrated_inference", |b| {
        let array = RoArray::paper_4x4(42);
        b.iter(|| {
            (0..array.len())
                .map(|site| {
                    let raw = array.raw_reading(site, 20.0);
                    array.infer_dvth_mv(site, raw).unwrap_or(0.0)
                })
                .sum::<f64>()
        })
    });
}

criterion_group!(
    benches,
    bench_em_population,
    bench_network,
    bench_wear_loop,
    bench_ro_array
);
criterion_main!(benches);
