//! Reproduces **Fig. 12(b)**: run-time scheduled BTI/EM active recovery
//! keeps the system "refreshing" and shrinks the required wearout
//! guardband.

use deep_healing::experiments;
use dh_bench::{banner, verdict};

fn main() {
    banner("Fig. 12(b) — lifetime scheduling: guardband reduction");
    let years = 1.0;
    let outcomes = experiments::fig12(years).expect("valid lifetime config");
    print!("{}", experiments::render_fig12(&outcomes));
    println!();
    let g = |name: &str| {
        outcomes
            .iter()
            .find(|o| o.policy == name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    let none = g("no-recovery");
    let deep = g("periodic-deep");
    verdict(
        "guardband with scheduled deep healing",
        "significantly reduced",
        format!(
            "{:.2}% → {:.2}% ({:.1}× smaller)",
            none.required_guardband * 100.0,
            deep.required_guardband * 100.0,
            none.required_guardband / deep.required_guardband.max(1e-12)
        ),
    );
    verdict(
        "permanent component at end of life",
        "eliminated by in-time recovery",
        format!(
            "{:.2} mV → {:.2} mV",
            none.final_permanent_mv, deep.final_permanent_mv
        ),
    );
    verdict(
        "projected EM lifetime of local grids",
        "extended",
        format!(
            "{:.0} y → {:.0} y",
            none.projected_em_ttf
                .map(|t| t.as_years())
                .unwrap_or(f64::NAN),
            deep.projected_em_ttf
                .map(|t| t.as_years())
                .unwrap_or(f64::NAN)
        ),
    );
}
