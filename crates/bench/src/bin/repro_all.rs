//! Runs every table/figure reproduction in paper order. This is the
//! one-shot regeneration of the paper's entire evaluation section.

use deep_healing::experiments;
use dh_bench::banner;

fn main() {
    banner("Deep Healing — full evaluation reproduction");

    banner("Table I");
    print!("{}", experiments::table1().render());

    banner("Fig. 4");
    print!("{}", experiments::fig4().render());

    banner("Fig. 5");
    print!("{}", experiments::render_fig5(&experiments::fig5()));

    banner("Fig. 6");
    print!("{}", experiments::render_fig6(&experiments::fig6()));

    banner("Fig. 7");
    print!("{}", experiments::render_fig7(&experiments::fig7()));

    banner("Figs. 8–9");
    print!("{}", experiments::fig9().render());

    banner("Fig. 10");
    print!("{}", experiments::render_fig10(&experiments::fig10()));

    banner("Fig. 11");
    print!("{}", experiments::fig11().render());

    banner("Fig. 12(b)");
    let outcomes = experiments::fig12(1.0).expect("valid lifetime config");
    print!("{}", experiments::render_fig12(&outcomes));
}
