//! Reproduces **Fig. 4**: permanent BTI component accumulation over
//! stress-vs-recovery cycles. The paper's headline: "under 1 hour vs.
//! 1 hour case, the permanent component is almost 0".

use deep_healing::experiments;
use dh_bench::{banner, verdict};

fn main() {
    banner("Fig. 4 — permanent BTI component vs stress:recovery schedule");
    let f = experiments::fig4();
    print!("{}", f.render());
    println!();
    let balanced = *f.final_permanent_mv.last().expect("three schedules");
    verdict(
        "1h:1h permanent component",
        "practically 0",
        format!(
            "{:.3} mV ({:.1}% of continuous-stress permanent)",
            balanced,
            balanced / f.continuous_permanent_mv * 100.0
        ),
    );
}
