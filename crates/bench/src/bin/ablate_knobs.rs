//! Ablation: which recovery knob buys what? (extends Table I)
//!
//! Sweeps recovery temperature and reverse bias independently and jointly,
//! mapping the full θ(V, T) surface the paper samples at four corners.

use deep_healing::bti::analytic::AnalyticBtiModel;
use deep_healing::prelude::*;
use dh_bench::banner;

fn main() {
    banner("Ablation — recovery-knob surface (Table I extended)");
    let model = AnalyticBtiModel::paper_calibrated();
    let stress = Seconds::from_hours(24.0);
    let recovery = Seconds::from_hours(6.0);

    print!("{:>10}", "T \\ V");
    let biases = [0.0, -0.1, -0.2, -0.3, -0.45, -0.6];
    for v in biases {
        print!("{v:>10.2}");
    }
    println!();
    for t in [20.0, 50.0, 80.0, 110.0, 140.0] {
        print!("{t:>9.0}C");
        for v in biases {
            let r = model.recovery_fraction(
                stress,
                recovery,
                RecoveryCondition::new(Volts::new(v), Celsius::new(t)),
            );
            print!("{:>9.1}%", r.as_percent());
        }
        println!();
    }

    println!("\nmarginal gains at the paper's corners:");
    let passive = model
        .recovery_fraction(stress, recovery, RecoveryCondition::PASSIVE)
        .as_percent();
    let active = model
        .recovery_fraction(stress, recovery, RecoveryCondition::ACTIVE)
        .as_percent();
    let accel = model
        .recovery_fraction(stress, recovery, RecoveryCondition::ACCELERATED)
        .as_percent();
    let both = model
        .recovery_fraction(stress, recovery, RecoveryCondition::ACTIVE_ACCELERATED)
        .as_percent();
    println!("  voltage alone:      +{:.1} points", active - passive);
    println!("  temperature alone:  +{:.1} points", accel - passive);
    println!(
        "  both (deep healing): +{:.1} points — sub-multiplicative: the knobs\n\
         \u{20}                       partly address the same trap population",
        both - passive
    );
}
