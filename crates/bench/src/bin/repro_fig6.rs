//! Reproduces **Fig. 6**: recovery scheduled in the *early* void-growth
//! phase achieves full recovery; holding the reverse current afterwards
//! causes reverse-direction EM.

use deep_healing::experiments;
use dh_bench::{banner, verdict};

fn main() {
    banner("Fig. 6 — early EM recovery: full healing, then reverse EM");
    let out = experiments::fig6();
    print!("{}", experiments::render_fig6(&out));
    println!();
    verdict(
        "early recovery completeness",
        "full recovery",
        format!(
            "{:.1}% of ΔR removed",
            (1.0 - out.delta_r_after_recovery / out.delta_r_at_recovery_start.max(1e-12)) * 100.0
        ),
    );
    verdict(
        "sustained reverse current",
        "reverse current-induced EM",
        format!("observed: {}", out.reverse_em_observed),
    );
}
