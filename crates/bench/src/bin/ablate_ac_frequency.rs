//! Ablation: frequency dependence of EM and BTI wearout under AC /
//! duty-cycled stress — the literature results (Tao et al.; Abella & Vera)
//! the paper's scheduling proposal generalises.

use deep_healing::bti::ac::period_sweep;
use deep_healing::bti::analytic::AnalyticBtiModel;
use deep_healing::em::ac::frequency_sweep;
use deep_healing::prelude::*;
use dh_bench::banner;

fn main() {
    banner("Ablation — AC stress frequency dependence (EM and BTI)");

    println!("EM: bipolar square wave, 75% positive duty, ±7.96 MA/cm², 230 °C");
    println!(
        "{:>16} {:>18} {:>14} {:>18}",
        "period (min)", "nucleation (min)", "TTF (min)", "peak σ (MPa)"
    );
    let outs = frequency_sweep(
        CurrentDensity::from_ma_per_cm2(7.96),
        Fraction::clamped(0.75),
        &[
            Seconds::ZERO,
            Seconds::from_minutes(240.0),
            Seconds::from_minutes(120.0),
            Seconds::from_minutes(60.0),
        ],
        Seconds::from_hours(40.0),
    );
    for o in &outs {
        println!(
            "{:>16} {:>18} {:>14} {:>18.1}",
            if o.period.value() == 0.0 {
                "DC".to_string()
            } else {
                format!("{:.0}", o.period.as_minutes())
            },
            o.nucleation
                .map(|t| format!("{:.0}", t.as_minutes()))
                .unwrap_or_else(|| "none".into()),
            o.ttf
                .map(|t| format!("{:.0}", t.as_minutes()))
                .unwrap_or_else(|| ">2400".into()),
            o.peak_stress.as_mpa(),
        );
    }
    println!(
        "lifetime increases with frequency (Tao et al. 1996), and balanced fast AC is immortal.\n"
    );

    println!(
        "BTI: 50% ON duty at accelerated stress, deep-healing OFF phases, 24 h cumulative stress"
    );
    println!(
        "{:>16} {:>14} {:>18}",
        "period (h)", "ΔVth (mV)", "permanent (mV)"
    );
    let outs = period_sweep(
        AnalyticBtiModel::paper_calibrated(),
        StressCondition::ACCELERATED,
        RecoveryCondition::ACTIVE_ACCELERATED,
        &[
            Seconds::from_hours(16.0),
            Seconds::from_hours(8.0),
            Seconds::from_hours(4.0),
            Seconds::from_hours(2.0),
            Seconds::from_hours(1.0),
        ],
        0.5,
        Seconds::from_hours(24.0),
    );
    for o in &outs {
        println!(
            "{:>16.1} {:>14.2} {:>18.4}",
            o.period.as_hours(),
            o.total_mv,
            o.permanent_mv
        );
    }
    println!(
        "\nthe permanent component collapses once the ON window drops below the\n\
         ~2 h consolidation time — Fig. 4's in-time recovery, in the frequency domain."
    );
}
