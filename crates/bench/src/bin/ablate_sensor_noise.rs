//! Ablation: how robust is the adaptive policy to sensor noise?
//!
//! The paper's run-time loop depends on wearout sensors. This study sweeps
//! the BTI sensor's relative error and reports the guardband the adaptive
//! policy achieves — quantifying how much sensing quality the feedback
//! loop actually needs.

use deep_healing::prelude::*;
use dh_bench::banner;

fn main() {
    banner("Ablation — adaptive policy vs sensor noise");
    let years = 0.5;

    println!(
        "{:>16} {:>20} {:>22}",
        "sensor noise", "guardband (freq %)", "permanent (mV)"
    );
    for noise in [0.0, 0.002, 0.01, 0.03, 0.08] {
        let system = SystemConfig {
            bti_sensor_noise: noise,
            ..SystemConfig::default()
        };
        let config = LifetimeConfig {
            years,
            system,
            ..LifetimeConfig::default()
        };
        let out =
            run_lifetime(&config, Policy::adaptive_default(), 42).expect("valid lifetime config");
        println!(
            "{:>15.1}% {:>19.3}% {:>22.3}",
            noise * 100.0,
            out.required_guardband * 100.0,
            out.final_permanent_mv
        );
    }

    println!(
        "\nThe trigger threshold (3 mV) sits well above the replica-RO noise\n\
         floor, so the loop tolerates percent-level sensors; only grossly\n\
         noisy sensors start missing recovery windows."
    );
}
