//! Reproduces **Table I**: BTI recovery percentages for a 6-hour recovery
//! following a 24-hour accelerated stress, under the four conditions of
//! Fig. 2(a).

use deep_healing::experiments;
use dh_bench::{banner, verdict};

fn main() {
    banner("Table I — BTI recovery under four conditions");
    let t = experiments::table1();
    print!("{}", t.render());
    println!();
    verdict(
        "condition 4 (deep healing) recovery",
        "72.4% / 72.7%",
        format!(
            "{:.1}% / {:.1}%",
            t.rows[3].simulated_measurement, t.rows[3].simulated_model
        ),
    );
    verdict(
        "passive baseline recovery",
        "0.66% / 1%",
        format!(
            "{:.2}% / {:.2}%",
            t.rows[0].simulated_measurement, t.rows[0].simulated_model
        ),
    );
}
