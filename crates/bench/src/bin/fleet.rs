//! Fleet-scale lifetime simulation driver.
//!
//! Runs a `dh-fleet` population end to end and prints the streaming
//! report plus throughput. This is the acceptance harness for the fleet
//! subsystem: a 100k-device run completes in one command, and with
//! `--checkpoint` the run can be killed at any point and re-invoked to
//! resume from the last shard boundary — the final report is
//! byte-identical to an uninterrupted run (compare the printed report
//! fingerprints).
//!
//! ```text
//! fleet --devices 100000 --years 3 --policy worst-first --budget 8
//! fleet --devices 100000 --checkpoint /tmp/fleet.dhfl --checkpoint-every 4
//! ```

use std::process::ExitCode;
use std::time::Instant;

use deep_healing::fleet::{
    run_fleet, run_fleet_checkpointed, FleetConfig, FleetPolicy, MaintenanceBudget,
};
use dh_bench::banner;

const USAGE: &str = "\
usage: fleet [flags]
  --devices N           population size                  (default 100000)
  --years Y             simulated lifetime, years        (default 3)
  --policy NAME[,NAME]  policy mix: static | worst-first | round-robin
                        (groups cycle through the list;  default worst-first)
  --budget N            recovery slots per group-epoch   (default 8)
  --group N             chips per maintenance group      (default 64)
  --shard-size N        chips per shard (multiple of --group; default 1024)
  --seed N              root seed                        (default 7)
  --threads N           worker threads (0 = all cores)   (default 0)
  --checkpoint PATH     resume from / checkpoint to PATH
  --checkpoint-every N  shards folded between writes     (default 8)
";

struct Args {
    config: FleetConfig,
    threads: Option<usize>,
    checkpoint: Option<std::path::PathBuf>,
    checkpoint_every: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut config = FleetConfig {
        devices: 100_000,
        ..FleetConfig::default()
    };
    let mut threads = None;
    let mut checkpoint = None;
    let mut checkpoint_every = 8;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("{flag} {value}: {e}");
        match flag.as_str() {
            "--devices" => config.devices = value.parse().map_err(|e| bad(&e))?,
            "--years" => config.years = value.parse().map_err(|e| bad(&e))?,
            "--policy" => {
                config.policies = value
                    .split(',')
                    .map(|name| {
                        FleetPolicy::parse(name)
                            .ok_or_else(|| bad(&format_args!("unknown policy {name:?}")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--budget" => {
                config.budget = MaintenanceBudget {
                    slots_per_group: value.parse().map_err(|e| bad(&e))?,
                }
            }
            "--group" => config.group_size = value.parse().map_err(|e| bad(&e))?,
            "--shard-size" => config.shard_size = value.parse().map_err(|e| bad(&e))?,
            "--seed" => config.seed = value.parse().map_err(|e| bad(&e))?,
            "--threads" => {
                let n: usize = value.parse().map_err(|e| bad(&e))?;
                threads = Some(n);
            }
            "--checkpoint" => checkpoint = Some(value.into()),
            "--checkpoint-every" => checkpoint_every = value.parse().map_err(|e| bad(&e))?,
            _ => return Err(format!("unknown flag {flag}")),
        }
    }
    Ok(Args {
        config,
        threads,
        checkpoint,
        checkpoint_every,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(why) => {
            if !why.is_empty() {
                eprintln!("error: {why}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(u8::from(!why.is_empty()) * 2);
        }
    };
    match args.threads {
        Some(0) | None => dh_exec::set_max_threads(None),
        Some(n) => dh_exec::set_max_threads(Some(n)),
    }

    let config = args.config;
    let policy_names: Vec<&str> = config.policies.iter().map(|p| p.name()).collect();
    banner("Fleet lifetime simulation");
    println!(
        "{} devices, {} y horizon ({} epochs), policy mix [{}], \
         {} slots per {}-chip group, {} shards of {}, seed {}\n",
        config.devices,
        config.years,
        config.total_epochs(),
        policy_names.join(", "),
        config.budget.slots_per_group,
        config.group_size,
        config.shard_count(),
        config.shard_size,
        config.seed,
    );

    let started = Instant::now();
    let report = match &args.checkpoint {
        Some(path) => {
            println!(
                "checkpointing to {} every {} shard(s)\n",
                path.display(),
                args.checkpoint_every
            );
            run_fleet_checkpointed(&config, path, args.checkpoint_every)
        }
        None => run_fleet(&config),
    };
    let report = match report {
        Ok(report) => report,
        Err(why) => {
            eprintln!("error: {why}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed().as_secs_f64();

    println!("{}", report.render());
    println!(
        "\nwall time: {:.2} s ({:.0} devices/s this invocation)",
        elapsed,
        report.devices as f64 / elapsed.max(1e-9)
    );
    if dh_obs::ENABLED {
        println!("\nmetrics:\n{}", dh_obs::snapshot().to_json());
    }
    ExitCode::SUCCESS
}
