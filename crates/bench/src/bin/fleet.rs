//! Fleet-scale lifetime simulation driver.
//!
//! Runs a `dh-fleet` population end to end and prints the streaming
//! report plus throughput. This is the acceptance harness for the fleet
//! subsystem: a 100k-device run completes in one command, and with
//! `--checkpoint` the run can be killed at any point and re-invoked to
//! resume from the last shard boundary — the final report is
//! byte-identical to an uninterrupted run (compare the printed report
//! fingerprints).
//!
//! ```text
//! fleet --devices 100000 --years 3 --policy worst-first --budget 8
//! fleet --devices 100000 --checkpoint /tmp/fleet.dhfl --checkpoint-every 4
//! fleet --devices 20000 --inject panic=0.01,stuck-chip=5 --inject-seed 99
//! ```
//!
//! `--inject` switches to the supervised engine: shard panics are caught
//! and retried, poisoned kernel outputs are rejected, corrupted
//! checkpoints fall back to the newest valid generation, and the run
//! finishes with a degraded report instead of aborting.
//!
//! `--scenario` switches to the `dh-scenario` engine instead: the named
//! (or file-loaded) scenario pack is integrated end to end, with the
//! same kill/resume contract through `--checkpoint`:
//!
//! ```text
//! fleet --list-scenarios
//! fleet --scenario sram-decoder
//! fleet --scenario ./my-pack.json --checkpoint /tmp/run.dhsp
//! ```

use std::process::ExitCode;
use std::time::Instant;

use deep_healing::fault::FaultPlan;
use deep_healing::fleet::{
    run_fleet, run_fleet_checkpointed_with, run_fleet_supervised_with, CheckpointMode,
    CheckpointStore, FleetConfig, FleetPolicy, MaintenanceBudget,
};
use dh_bench::banner;
use dh_exec::RetryPolicy;
use dh_scenario::{run_pack_supervised, ScenarioCheckpointStore, ScenarioRegistry, ScenarioRun};

const USAGE: &str = "\
usage: fleet [flags]
  --devices N           population size                  (default 100000)
  --years Y             simulated lifetime, years        (default 3)
  --policy NAME[,NAME]  policy mix: static | worst-first | round-robin
                        (groups cycle through the list;  default worst-first)
  --budget N            recovery slots per group-epoch   (default 8)
  --group N             chips per maintenance group      (default 64)
  --shard-size N        chips per shard (multiple of --group;
                        default: sized from --devices and the worker count)
  --seed N              root seed                        (default 7)
  --threads N           worker threads (0 = all cores)   (default 0)
  --checkpoint PATH     resume from / checkpoint to PATH
  --checkpoint-every N  shards folded between writes     (default 8)
  --checkpoint-mode M   sync | async writer thread       (default async)
  --inject SPEC         fault plan, e.g. panic=0.01,ckpt-flip=1,stuck-chip=5
                        (runs supervised; works in scenario mode too;
                        see dh-fault for the spec grammar)
  --inject-seed N       fault-stream seed  (default: --seed / the pack seed)
  --retry N             attempts per shard before quarantine (default 3)
  --keep N              checkpoint generations retained  (default 3)
  --fail-on-degraded    exit 3 when the run finishes with a non-empty
                        degraded report (for CI gating)
  --scenario NAME|PATH  run a dh-scenario pack instead of a fleet config
  --scenario-dir DIR    extra pack files (*.json) joining the registry
  --epochs N            override the pack's epoch count (scenario mode)
  --list-scenarios      print the scenario registry and exit
";

struct Args {
    config: FleetConfig,
    shard_size_given: bool,
    threads: Option<usize>,
    checkpoint: Option<std::path::PathBuf>,
    checkpoint_every: u64,
    checkpoint_mode: CheckpointMode,
    inject: Option<String>,
    inject_seed: Option<u64>,
    retry: u32,
    keep: usize,
    scenario: Option<String>,
    scenario_dir: Option<std::path::PathBuf>,
    epochs: Option<u64>,
    list_scenarios: bool,
    fail_on_degraded: bool,
}

/// Exit code for `--fail-on-degraded`: the run *finished* (the report
/// printed is real), but it only survived by degrading — distinct from
/// 1 (runtime failure) and 2 (usage error) so CI can tell them apart.
const DEGRADED_EXIT: u8 = 3;

/// The `--fail-on-degraded` epilogue shared by the fleet and scenario
/// paths.
fn degraded_exit(args: &Args, degraded: &deep_healing::fault::DegradedReport) -> ExitCode {
    if args.fail_on_degraded && degraded.is_degraded() {
        eprintln!("error: run degraded (--fail-on-degraded)");
        return ExitCode::from(DEGRADED_EXIT);
    }
    ExitCode::SUCCESS
}

fn parse_args() -> Result<Args, String> {
    let mut config = FleetConfig {
        devices: 100_000,
        ..FleetConfig::default()
    };
    let mut shard_size_given = false;
    let mut threads = None;
    let mut checkpoint = None;
    let mut checkpoint_every = 8;
    let mut checkpoint_mode = CheckpointMode::default();
    let mut inject = None;
    let mut inject_seed = None;
    let mut retry = 3;
    let mut keep = 3;
    let mut scenario = None;
    let mut scenario_dir = None;
    let mut epochs = None;
    let mut list_scenarios = false;
    let mut fail_on_degraded = false;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        if flag == "--list-scenarios" {
            list_scenarios = true;
            continue;
        }
        if flag == "--fail-on-degraded" {
            fail_on_degraded = true;
            continue;
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let bad = |e: &dyn std::fmt::Display| format!("{flag} {value}: {e}");
        match flag.as_str() {
            "--devices" => config.devices = value.parse().map_err(|e| bad(&e))?,
            "--years" => config.years = value.parse().map_err(|e| bad(&e))?,
            "--policy" => {
                config.policies = value
                    .split(',')
                    .map(|name| {
                        FleetPolicy::parse(name)
                            .ok_or_else(|| bad(&format_args!("unknown policy {name:?}")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--budget" => {
                config.budget = MaintenanceBudget {
                    slots_per_group: value.parse().map_err(|e| bad(&e))?,
                }
            }
            "--group" => config.group_size = value.parse().map_err(|e| bad(&e))?,
            "--shard-size" => {
                config.shard_size = value.parse().map_err(|e| bad(&e))?;
                shard_size_given = true;
            }
            "--seed" => config.seed = value.parse().map_err(|e| bad(&e))?,
            "--threads" => {
                let n: usize = value.parse().map_err(|e| bad(&e))?;
                threads = Some(n);
            }
            "--checkpoint" => checkpoint = Some(value.into()),
            "--checkpoint-every" => checkpoint_every = value.parse().map_err(|e| bad(&e))?,
            "--checkpoint-mode" => {
                checkpoint_mode = CheckpointMode::parse(&value)
                    .ok_or_else(|| bad(&format_args!("expected sync or async")))?;
            }
            "--inject" => inject = Some(value),
            "--inject-seed" => inject_seed = Some(value.parse().map_err(|e| bad(&e))?),
            "--retry" => retry = value.parse().map_err(|e| bad(&e))?,
            "--keep" => keep = value.parse().map_err(|e| bad(&e))?,
            "--scenario" => scenario = Some(value),
            "--scenario-dir" => scenario_dir = Some(value.into()),
            "--epochs" => epochs = Some(value.parse().map_err(|e| bad(&e))?),
            _ => return Err(format!("unknown flag {flag}")),
        }
    }
    Ok(Args {
        config,
        shard_size_given,
        threads,
        checkpoint,
        checkpoint_every,
        checkpoint_mode,
        inject,
        inject_seed,
        retry,
        keep,
        scenario,
        scenario_dir,
        epochs,
        list_scenarios,
        fail_on_degraded,
    })
}

/// Builds the registry the `--scenario*` flags ask for.
fn scenario_registry(args: &Args) -> Result<ScenarioRegistry, dh_scenario::ScenarioError> {
    match &args.scenario_dir {
        Some(dir) => ScenarioRegistry::with_dir(dir),
        None => Ok(ScenarioRegistry::builtin()),
    }
}

/// The `--list-scenarios` table.
fn list_scenarios(args: &Args) -> ExitCode {
    let registry = match scenario_registry(args) {
        Ok(reg) => reg,
        Err(why) => {
            eprintln!("error: {why}");
            return ExitCode::from(2);
        }
    };
    banner("Scenario registry");
    for entry in registry.entries() {
        let p = &entry.pack;
        println!(
            "{:<20} [{:<9}] {} epochs, {} elements in {} group(s)\n    {}",
            p.name,
            entry.source.name(),
            p.epochs,
            p.total_elements(),
            p.blocks.len(),
            p.description,
        );
    }
    ExitCode::SUCCESS
}

/// The `--scenario` run path: resolve, maybe resume, integrate in
/// checkpoint-sized batches, report.
fn run_scenario(args: &Args, arg: &str) -> ExitCode {
    let pack = match scenario_registry(args).and_then(|reg| reg.resolve(arg)) {
        Ok(mut pack) => {
            if let Some(epochs) = args.epochs {
                pack.epochs = epochs;
            }
            match pack.validate() {
                Ok(()) => pack,
                Err(why) => {
                    eprintln!("error: {why}");
                    return ExitCode::from(2);
                }
            }
        }
        Err(why) => {
            eprintln!("error: {why}");
            return ExitCode::from(2);
        }
    };

    banner("Scenario run");
    println!(
        "scenario {:?} (pack fingerprint {:#018x}): {} elements in {} group(s), \
         {} epochs of {} h, maintenance {} every {} epoch(s)\n",
        pack.name,
        pack.fingerprint(),
        pack.total_elements(),
        pack.blocks.len(),
        pack.epochs,
        pack.epoch_hours,
        pack.maintenance.policy.name(),
        pack.maintenance.interval_epochs,
    );

    // `--inject` routes through the supervised engine with the
    // generation-rotating checkpoint store; the unfaulted path below
    // keeps the original single-file layout byte-for-byte.
    if let Some(spec) = &args.inject {
        let seed = args.inject_seed.unwrap_or(pack.seed);
        let plan = match FaultPlan::parse(spec, seed) {
            Ok(plan) => plan,
            Err(why) => {
                eprintln!("error: --inject {spec}: {why}");
                return ExitCode::from(2);
            }
        };
        println!("injecting faults [{spec}] with fault seed {seed}\n");
        let retry = RetryPolicy {
            max_attempts: args.retry,
            ..RetryPolicy::default()
        };
        let store = args
            .checkpoint
            .as_ref()
            .map(|path| ScenarioCheckpointStore::new(path, args.keep));
        if let Some(path) = &args.checkpoint {
            println!(
                "checkpointing to {} every {} batch(es), keeping {} generation(s)\n",
                path.display(),
                args.checkpoint_every,
                args.keep
            );
        }
        let element_epochs = pack.total_elements() * pack.epochs;
        let started = Instant::now();
        let outcome = run_pack_supervised(
            pack,
            Some(&plan),
            &retry,
            store.as_ref().map(|s| (s, args.checkpoint_every)),
        );
        let (report, degraded) = match outcome {
            Ok(outcome) => outcome,
            Err(why) => {
                eprintln!("error: {why}");
                return ExitCode::FAILURE;
            }
        };
        let elapsed = started.elapsed().as_secs_f64();
        println!("{}", report.render());
        println!("\n{}", degraded.render());
        println!(
            "\nwall time: {:.2} s ({:.0} element-epochs/s this invocation)",
            elapsed,
            element_epochs as f64 / elapsed.max(1e-9)
        );
        if dh_obs::ENABLED {
            println!("\nmetrics:\n{}", dh_obs::snapshot().to_json());
        }
        return degraded_exit(args, &degraded);
    }

    let resume = args.checkpoint.as_ref().filter(|p| p.exists());
    let mut run = match resume {
        Some(path) => match ScenarioRun::resume_from(pack, path) {
            Ok(run) => {
                let p = run.progress();
                println!(
                    "resumed from {} at epoch {}/{}, shard {}/{}\n",
                    path.display(),
                    p.epoch,
                    p.total_epochs,
                    p.shard_cursor,
                    p.shards
                );
                run
            }
            Err(why) => {
                eprintln!("error: {why}");
                return ExitCode::FAILURE;
            }
        },
        None => ScenarioRun::new(pack),
    };

    let started = Instant::now();
    let batch = args.checkpoint_every.max(1) as usize;
    while !run.progress().done {
        run.step(batch);
        if let Some(path) = &args.checkpoint {
            if let Err(why) = run.save_checkpoint(path) {
                eprintln!("error: {why}");
                return ExitCode::FAILURE;
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();

    let report = run.report();
    println!("{}", report.render());
    println!(
        "\nwall time: {:.2} s ({:.0} element-epochs/s this invocation)",
        elapsed,
        (run.pack().total_elements() * run.pack().epochs) as f64 / elapsed.max(1e-9)
    );
    if dh_obs::ENABLED {
        println!("\nmetrics:\n{}", dh_obs::snapshot().to_json());
    }
    // An unfaulted run can still resume from a checkpoint that recorded
    // degradation in a previous (injected) invocation.
    degraded_exit(args, &run.degraded)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(why) => {
            if !why.is_empty() {
                eprintln!("error: {why}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(u8::from(!why.is_empty()) * 2);
        }
    };
    match args.threads {
        Some(0) | None => dh_exec::set_max_threads(None),
        Some(n) => dh_exec::set_max_threads(Some(n)),
    }

    if args.list_scenarios {
        return list_scenarios(&args);
    }
    if let Some(arg) = args.scenario.clone() {
        return run_scenario(&args, &arg);
    }

    let mut config = args.config.clone();
    if !args.shard_size_given {
        // Size shards from the population and worker count (about four
        // shards per worker, capped for cache residency). The report is
        // shard-size invariant, but a checkpoint's cursor is not: pass an
        // explicit --shard-size when resuming across a --threads change.
        config.shard_size = config.auto_shard_size(dh_exec::max_threads());
    }
    // Reject bad numeric input at the CLI boundary with the field named,
    // instead of panicking (or NaN-poisoning an aggregate) deep in the
    // kernels. The run_fleet* entry points validate again; this check
    // just fails before the banner goes out.
    if let Err(why) = config.validate() {
        eprintln!("error: {why}");
        return ExitCode::from(2);
    }
    let policy_names: Vec<&str> = config.policies.iter().map(|p| p.name()).collect();
    banner("Fleet lifetime simulation");
    println!(
        "{} devices, {} y horizon ({} epochs), policy mix [{}], \
         {} slots per {}-chip group, {} shards of {}, seed {}\n",
        config.devices,
        config.years,
        config.total_epochs(),
        policy_names.join(", "),
        config.budget.slots_per_group,
        config.group_size,
        config.shard_count(),
        config.shard_size,
        config.seed,
    );

    let started = Instant::now();
    let mut degraded = None;
    let report = if let Some(spec) = &args.inject {
        let seed = args.inject_seed.unwrap_or(config.seed);
        let plan = match FaultPlan::parse(spec, seed) {
            Ok(plan) => plan,
            Err(why) => {
                eprintln!("error: --inject {spec}: {why}");
                return ExitCode::from(2);
            }
        };
        println!("injecting faults [{spec}] with fault seed {seed}\n");
        let retry = RetryPolicy {
            max_attempts: args.retry,
            ..RetryPolicy::default()
        };
        let store = args
            .checkpoint
            .as_ref()
            .map(|path| CheckpointStore::new(path, args.keep));
        if let Some(path) = &args.checkpoint {
            println!(
                "checkpointing ({:?}) to {} every {} shard(s), keeping {} generation(s)\n",
                args.checkpoint_mode,
                path.display(),
                args.checkpoint_every,
                args.keep
            );
        }
        run_fleet_supervised_with(
            &config,
            Some(&plan),
            &retry,
            store.as_ref().map(|s| (s, args.checkpoint_every)),
            args.checkpoint_mode,
        )
        .map(|(report, deg)| {
            degraded = Some(deg);
            report
        })
    } else {
        match &args.checkpoint {
            Some(path) => {
                println!(
                    "checkpointing ({:?}) to {} every {} shard(s)\n",
                    args.checkpoint_mode,
                    path.display(),
                    args.checkpoint_every
                );
                run_fleet_checkpointed_with(
                    &config,
                    path,
                    args.checkpoint_every,
                    args.checkpoint_mode,
                )
            }
            None => run_fleet(&config),
        }
    };
    let report = match report {
        Ok(report) => report,
        Err(why) => {
            eprintln!("error: {why}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed().as_secs_f64();

    println!("{}", report.render());
    if let Some(deg) = &degraded {
        println!("\n{}", deg.render());
    }
    println!(
        "\nwall time: {:.2} s ({:.0} devices/s this invocation)",
        elapsed,
        report.devices as f64 / elapsed.max(1e-9)
    );
    if dh_obs::ENABLED {
        println!("\nmetrics:\n{}", dh_obs::snapshot().to_json());
    }
    match &degraded {
        Some(deg) => degraded_exit(&args, deg),
        None => ExitCode::SUCCESS,
    }
}
