//! Ablation: compensate for wearout, or heal it?
//!
//! Quantifies the paper's Section I argument: adaptive compensation (VDD
//! boost tracking degradation) keeps performance flat but burns ever more
//! power; scheduled deep healing fixes the wearout itself at a fixed
//! core-time cost.

use deep_healing::sched::adapt::{compensation_study, render_study};
use deep_healing::sched::SystemConfig;
use dh_bench::{banner, verdict};

fn main() {
    banner("Ablation — compensation (VDD boost) vs deep healing");
    let outcomes =
        compensation_study(SystemConfig::default(), 1.0, 42).expect("valid configuration");
    print!("{}", render_study(&outcomes));
    println!();
    let [compensate, heal] = outcomes;
    verdict(
        "compensation power trajectory",
        "burns more power gradually",
        format!(
            "{:.2}% mean, {:.2}% at end of life",
            compensate.mean_power_overhead * 100.0,
            compensate.final_power_overhead * 100.0
        ),
    );
    verdict(
        "healing cost",
        "fixed scheduling overhead",
        format!(
            "{:.1}% core time, residual guardband {:.3}%",
            heal.recovery_overhead.as_percent(),
            heal.residual_guardband * 100.0
        ),
    );
}
