//! Ablation: stress:recovery duty sweep (extends Fig. 4).
//!
//! How does the permanent BTI component depend on the schedule granularity
//! and duty ratio? The paper shows 1:1 is "practically 0" — this study maps
//! the whole neighbourhood and confirms the in-time-recovery cliff.

use deep_healing::bti::analytic::AnalyticBtiModel;
use deep_healing::bti::schedule::{run_schedule, CyclicSchedule};
use deep_healing::prelude::*;
use dh_bench::banner;

fn main() {
    banner("Ablation — stress:recovery duty sweep (Fig. 4 extended)");
    let model = AnalyticBtiModel::paper_calibrated();

    let mut continuous = BtiDevice::new(model);
    continuous.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
    let reference = continuous.permanent_mv();
    println!("reference: 24 h continuous stress → {reference:.3} mV permanent\n");

    println!(
        "{:>12} {:>12} {:>18} {:>22}",
        "stress (h)", "recovery (h)", "permanent (mV)", "% of continuous"
    );
    for (stress_h, recovery_h) in [
        (8.0, 1.0),
        (4.0, 1.0),
        (2.0, 1.0),
        (1.0, 1.0),
        (1.0, 0.5),
        (0.5, 0.5),
        (1.0, 2.0),
    ] {
        let schedule = CyclicSchedule::fig4(stress_h, recovery_h, 24.0);
        let last = run_schedule(model, &schedule)
            .pop()
            .expect("at least one cycle");
        println!(
            "{:>12.1} {:>12.1} {:>18.4} {:>21.1}%",
            stress_h,
            recovery_h,
            last.permanent_mv,
            last.permanent_mv / reference * 100.0
        );
    }

    println!(
        "\nThe cliff sits where the stress window outpaces permanent-damage\n\
         consolidation (~2 h): schedules that recover inside that window keep\n\
         the permanent component near zero regardless of duty ratio."
    );
}
