//! Ablation: how late can EM recovery start? (the Fig. 5 vs Fig. 6
//! contrast, swept continuously)
//!
//! Recovery applied early in void growth heals fully; the longer the void
//! exists, the more of it pins and the larger the permanent residue.

use deep_healing::prelude::*;
use dh_bench::banner;

fn main() {
    banner("Ablation — recovery start time within void growth (Figs. 5/6)");
    let j = CurrentDensity::from_ma_per_cm2(7.96);

    println!(
        "{:>22} {:>14} {:>16} {:>18}",
        "growth before heal", "ΔR peak (Ω)", "residual (Ω)", "recovered (%)"
    );
    for growth_minutes in [15.0, 30.0, 60.0, 120.0, 200.0, 300.0] {
        let mut wire = EmWire::paper_wire();
        // Stress through nucleation.
        while !wire.has_void() && wire.time() < Seconds::from_hours(8.0) {
            wire.advance(Seconds::from_minutes(5.0), j);
        }
        wire.advance(Seconds::from_minutes(growth_minutes), j);
        let peak = wire.delta_resistance().value();
        // Heal for a fixed generous interval; track the minimum ΔR reached.
        // (Right after nucleation the stored tension keeps feeding the void
        // for a while even under reverse current — stress-induced voiding —
        // so early cases need the reservoir drained before they heal.)
        let mut residual = peak;
        for _ in 0..90 {
            wire.advance(Seconds::from_minutes(2.0), -j);
            residual = residual.min(wire.delta_resistance().value());
        }
        println!(
            "{:>18.0} min {:>14.3} {:>16.3} {:>17.1}%",
            growth_minutes,
            peak,
            residual,
            (1.0 - residual / peak.max(1e-12)) * 100.0
        );
    }

    println!(
        "\nEarly recovery (Fig. 6) heals essentially completely; the older the\n\
         void, the larger the pinned (consolidated) residue — schedule healing\n\
         before the interface consolidates."
    );
}
