//! Reproduces the **Fig. 11** context: the layered PDN's local grids are
//! the EM-sensitive layers, and the assist circuitry's current-reversal
//! duty protects them.

use deep_healing::experiments;
use dh_bench::{banner, verdict};

fn main() {
    banner("Fig. 11 — PDN stack: local grids are the EM hazard");
    let f = experiments::fig11();
    print!("{}", f.render());
    println!();
    let local = f
        .hazard
        .worst_in(deep_healing::pdn::grid::LayerClass::Local)
        .expect("local branches");
    let global = f
        .hazard
        .worst_in(deep_healing::pdn::grid::LayerClass::Global)
        .expect("global branches");
    verdict(
        "local vs global EM sensitivity",
        "local grids most sensitive",
        format!(
            "local TTF {:.0} y ≪ global {:.0} y",
            local.median_ttf.as_years(),
            global.median_ttf.as_years()
        ),
    );
    verdict(
        "assist protection (20% duty)",
        "local grids protected",
        format!("TTF × {:.2}", f.protected_extension),
    );
}
