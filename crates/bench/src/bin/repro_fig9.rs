//! Reproduces **Fig. 8(b)** (assist-circuit truth table) and **Fig. 9**
//! (functional simulation: reversed equal-magnitude grid current; swapped
//! load rails with a 0.2–0.3 V droop).

use deep_healing::experiments;
use dh_bench::{banner, verdict};

fn main() {
    banner("Figs. 8–9 — assist circuitry: truth table and operating points");
    let f = experiments::fig9();
    print!("{}", f.render());
    println!();
    verdict(
        "EM-mode grid current",
        "reversed, same |I|",
        format!(
            "{:.1} µA vs {:.1} µA",
            f.normal.grid_current.value() * 1e6,
            f.em.grid_current.value() * 1e6
        ),
    );
    verdict(
        "BTI-mode load VSS / VDD nodes",
        "≈0.816 V / ≈0.223 V",
        format!(
            "{:.3} V / {:.3} V",
            f.bti.load_vss.value(),
            f.bti.load_vdd.value()
        ),
    );
    verdict(
        "pass-device droop",
        "0.2–0.3 V",
        format!("{:.3} V", f.normal.droop(dh_units::Volts::new(1.0)).value()),
    );
}
