//! Performance snapshot for the fleet PR.
//!
//! Measures the optimized engine against its in-tree baselines **in the
//! same run** (same binary, same machine, same optimization flags) and
//! writes the results to `BENCH_pr4.json` in the workspace root
//! (`BENCH_pr1.json`–`BENCH_pr3.json` are kept as history):
//!
//! * CET ensemble stress, pinned to 1 thread: the SoA kernel with
//!   precomputed rate tables and adaptive sub-stepping vs the PR 1
//!   fixed-stride per-trap-transcendental kernel — the acceptance metric
//!   is a ≥2× single-thread speedup with ≤1e-12 relative dVth agreement
//!   against the scalar reference;
//! * the same comparison at the default thread count;
//! * CET ensemble recovery: the batched-exponential kernel vs the scalar
//!   per-trap `powf` reference;
//! * guardband Monte-Carlo: the parallel self-scheduling sweep vs the
//!   seed's serial reference loop (re-established from `BENCH_pr1.json`,
//!   now under the periodic-deep policy so recovery scheduling is on the
//!   measured path);
//! * calibration memo: first (fitting) vs second (cached) call for a
//!   fresh trap count through the bounded memo;
//! * fleet simulation: the same `dh-fleet` population stepped serially on
//!   1 thread vs sharded across the default thread count — the speedup is
//!   the parallel scaling and the row asserts the two reports are
//!   bit-identical (report fingerprints equal), the fleet determinism
//!   acceptance criterion.
//!
//! With `--obs` (and the `obs` feature compiled in), the snapshot also
//! embeds the full `dh-obs` metrics registry — Memo hit/miss counts, CET
//! sub-step totals, per-policy scheduler mode transitions — under a
//! `"metrics"` key, so a perf regression can be read next to the work the
//! engine actually did. Without the feature the flag only prints a
//! warning: the default build must stay instrumentation-free.

use std::time::Instant;

use deep_healing::bti::calibration::TableOneTargets;
use deep_healing::prelude::*;

/// Times a closure, returning (seconds, result).
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t = Instant::now();
    let v = f();
    (t.elapsed().as_secs_f64(), v)
}

/// Times a closure over several repetitions, returning the fastest time and
/// the last result. Scheduler noise is strictly additive, so the minimum is
/// the estimator closest to the true cost.
fn timed_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let (mut best, mut out) = timed(&mut f);
    for _ in 1..reps {
        let (s, v) = timed(&mut f);
        if s < best {
            best = s;
        }
        out = v;
    }
    (best, out)
}

struct Row {
    name: &'static str,
    baseline_s: f64,
    optimized_s: f64,
    note: String,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.baseline_s / self.optimized_s.max(1e-12)
    }
}

const TRAPS: usize = 2000;
const STRESS_HOURS: f64 = 6.0;
const REPS: usize = 9;

/// Benchmarks one stress configuration: PR 1 fixed-stride kernel as the
/// baseline, the SoA kernel as the optimized path, and the scalar reference
/// as the agreement anchor (same adaptive schedule as the kernel).
fn stress_row(name: &'static str, ensemble: &TrapEnsemble, threads: usize) -> Row {
    let dt = Seconds::from_hours(STRESS_HOURS);
    let cond = StressCondition::ACCELERATED;

    let (base_s, _pr1_mv) = timed_best(REPS, || {
        let mut e = ensemble.clone();
        e.stress_pr1(dt, cond);
        e.delta_vth_mv()
    });
    let (opt_s, opt_mv) = timed_best(REPS, || {
        let mut e = ensemble.clone();
        e.stress(dt, cond);
        e.delta_vth_mv()
    });
    let ref_mv = {
        let mut e = ensemble.clone();
        e.stress_reference(dt, cond);
        e.delta_vth_mv()
    };
    let rel = (ref_mv - opt_mv).abs() / ref_mv.max(1e-12);
    assert!(
        rel <= 1e-12,
        "SoA kernel must match the scalar reference: rel {rel:e}"
    );
    Row {
        name,
        baseline_s: base_s,
        optimized_s: opt_s,
        note: format!(
            "{TRAPS} traps x {STRESS_HOURS} h, {threads} thread(s); \
             PR1 fixed-stride vs SoA kernel; dVth agrees with reference to {rel:.1e} rel"
        ),
    }
}

fn main() {
    let want_obs = std::env::args().skip(1).any(|a| a == "--obs");
    if want_obs && !dh_obs::ENABLED {
        eprintln!(
            "warning: --obs requested but the `obs` feature is not compiled in; \
             rebuild with `--features obs` to embed a metrics snapshot"
        );
    }
    let default_threads = dh_exec::max_threads();
    let mut rows = Vec::new();

    let ensemble = TrapEnsemble::paper_calibrated(TRAPS).unwrap();

    // --- CET stress, single thread (the acceptance metric) ----------------
    dh_exec::set_max_threads(Some(1));
    let single = stress_row("cet_stress", &ensemble, 1);
    dh_exec::set_max_threads(None);
    assert!(
        single.speedup() >= 2.0,
        "single-thread cet_stress speedup {:.2}x is below the 2x target",
        single.speedup()
    );
    rows.push(single);

    // --- CET stress, default threads ---------------------------------------
    rows.push(stress_row(
        "cet_stress_parallel",
        &ensemble,
        default_threads,
    ));

    // --- CET recovery -------------------------------------------------------
    let stressed = {
        let mut e = ensemble.clone();
        e.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        e
    };
    let recover_dt = Seconds::from_hours(STRESS_HOURS);
    let (base_s, ref_mv) = timed_best(REPS, || {
        let mut e = stressed.clone();
        e.recover_reference(recover_dt, RecoveryCondition::ACTIVE_ACCELERATED);
        e.delta_vth_mv()
    });
    let (opt_s, opt_mv) = timed_best(REPS, || {
        let mut e = stressed.clone();
        e.recover(recover_dt, RecoveryCondition::ACTIVE_ACCELERATED);
        e.delta_vth_mv()
    });
    let rel = (ref_mv - opt_mv).abs() / ref_mv.max(1e-12);
    assert!(
        rel <= 1e-12,
        "recovery kernel must match the scalar reference: rel {rel:e}"
    );
    rows.push(Row {
        name: "cet_recover",
        baseline_s: base_s,
        optimized_s: opt_s,
        note: format!(
            "{TRAPS} traps x {STRESS_HOURS} h active-accelerated recovery; \
             scalar powf reference vs rate-table kernel; dVth agrees to {rel:.1e} rel"
        ),
    });

    // --- Guardband Monte-Carlo ----------------------------------------------
    let lifetime = LifetimeConfig {
        years: 0.2,
        ..LifetimeConfig::default()
    };
    let policy = Policy::periodic_deep_default();
    let (base_s, base_gb) = timed(|| {
        deep_healing::sched::lifetime::monte_carlo_guardband_baseline(&lifetime, policy, 0..8)
            .unwrap()
    });
    let (opt_s, opt_gb) = timed(|| {
        deep_healing::sched::lifetime::monte_carlo_guardband(&lifetime, policy, 0..8).unwrap()
    });
    let rel = base_gb
        .iter()
        .zip(&opt_gb)
        .map(|(b, o)| (b.guardband - o.guardband).abs() / b.guardband.max(1e-12))
        .fold(0.0, f64::max);
    assert!(
        rel <= 1e-8,
        "parallel guardbands must match the serial reference: rel {rel:e}"
    );
    rows.push(Row {
        name: "guardband_mc",
        baseline_s: base_s,
        optimized_s: opt_s,
        note: format!(
            "8 seeds x 0.2 y, periodic-deep policy; serial reference loop vs \
             self-scheduling parallel sweep; guardbands agree to {rel:.1e} rel"
        ),
    });

    // --- Calibration memo ----------------------------------------------------
    // A trap count nothing else in this process uses, so the first call
    // really fits and the second really hits the bounded cache.
    let targets = TableOneTargets::measurement_column();
    let fits_before = deep_healing::bti::cet::calibration_fit_runs();
    let (cold_s, _) = timed(|| TrapEnsemble::calibrated(1234, &targets).unwrap());
    let (warm_s, _) = timed(|| TrapEnsemble::calibrated(1234, &targets).unwrap());
    let fits_after = deep_healing::bti::cet::calibration_fit_runs();
    assert_eq!(
        fits_after - fits_before,
        1,
        "exactly one fit for two calibrated() calls"
    );
    rows.push(Row {
        name: "calibration_memo",
        baseline_s: cold_s,
        optimized_s: warm_s,
        note: "cold (fitting) vs warm (memoized) calibrated() call, 1234 traps".into(),
    });

    // --- Fleet simulation ----------------------------------------------------
    let fleet_config = FleetConfig {
        devices: 8_192,
        years: 0.5,
        shard_size: 512,
        ..FleetConfig::default()
    };
    dh_exec::set_max_threads(Some(1));
    let (base_s, serial_report) = timed(|| run_fleet(&fleet_config).unwrap());
    dh_exec::set_max_threads(None);
    let (opt_s, parallel_report) = timed(|| run_fleet(&fleet_config).unwrap());
    assert_eq!(
        serial_report.fingerprint(),
        parallel_report.fingerprint(),
        "parallel fleet report must be bit-identical to the serial one"
    );
    rows.push(Row {
        name: "fleet_sim",
        baseline_s: base_s,
        optimized_s: opt_s,
        note: format!(
            "{} devices x {} epochs, worst-first; 1 thread vs {} threads; \
             reports bit-identical (fingerprint {:#018x})",
            fleet_config.devices,
            fleet_config.total_epochs(),
            default_threads,
            parallel_report.fingerprint(),
        ),
    });

    // --- Report -------------------------------------------------------------
    let embed_metrics = want_obs && dh_obs::ENABLED;
    let mut json = String::from("{\n  \"pr\": 4,\n  \"threads\": ");
    json.push_str(&default_threads.to_string());
    json.push_str(",\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  \"{}\": {{\"baseline_s\": {:.6}, \"optimized_s\": {:.6}, \"speedup\": {:.2}, \"note\": \"{}\"}}{}\n",
            row.name,
            row.baseline_s,
            row.optimized_s,
            row.speedup(),
            row.note,
            if i + 1 < rows.len() || embed_metrics { "," } else { "" },
        ));
    }
    if embed_metrics {
        json.push_str("  \"metrics\": ");
        json.push_str(&dh_obs::snapshot().to_json());
        json.push('\n');
    }
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr4.json");
    std::fs::write(path, &json).expect("write BENCH_pr4.json");

    for row in &rows {
        println!(
            "{:<20} baseline {:>9.3} ms   optimized {:>9.3} ms   speedup {:>6.2}x   ({})",
            row.name,
            row.baseline_s * 1e3,
            row.optimized_s * 1e3,
            row.speedup(),
            row.note,
        );
    }
    println!("wrote {path}");
}
