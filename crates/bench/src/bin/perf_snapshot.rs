//! Performance snapshot for the `dh-exec` engine PR.
//!
//! Measures each ported hot path against the seed's serial reference
//! implementation **in the same run** (same binary, same machine, same
//! optimization flags) and writes the results to `BENCH_pr1.json` in the
//! workspace root:
//!
//! * EM population Monte-Carlo: `simulate_population` (per-wire seed
//!   streams, single adaptive advance) vs the shared-RNG 10-minute
//!   outer-loop baseline;
//! * guardband Monte-Carlo: `monte_carlo_guardband` (self-scheduling seed
//!   queue, LU thermal solve, fused stress law) vs the serial
//!   reference-path loop;
//! * CET ensemble stress: gate-trajectory precompute vs the step-outer
//!   reference loop;
//! * calibration memo: first (fitting) vs second (cached) call for a
//!   fresh trap count.

use std::time::Instant;

use deep_healing::bti::calibration::TableOneTargets;
use deep_healing::em::population::{
    simulate_population, simulate_population_baseline, VariationModel,
};
use deep_healing::prelude::*;
use deep_healing::sched::lifetime::{monte_carlo_guardband, monte_carlo_guardband_baseline};

/// Times a closure, returning (seconds, result).
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t = Instant::now();
    let v = f();
    (t.elapsed().as_secs_f64(), v)
}

/// Times a closure over several repetitions, returning the fastest time and
/// the last result. Scheduler noise is strictly additive, so the minimum is
/// the estimator closest to the true cost.
fn timed_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let (mut best, mut out) = timed(&mut f);
    for _ in 1..reps {
        let (s, v) = timed(&mut f);
        if s < best {
            best = s;
        }
        out = v;
    }
    (best, out)
}

struct Row {
    name: &'static str,
    baseline_s: f64,
    optimized_s: f64,
    note: String,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.baseline_s / self.optimized_s.max(1e-12)
    }
}

fn main() {
    let mut rows = Vec::new();

    // --- EM population Monte-Carlo ---------------------------------------
    let (n, j, horizon, seed) = (
        16,
        CurrentDensity::from_ma_per_cm2(7.96),
        Seconds::from_hours(48.0),
        17,
    );
    let variation = VariationModel::default();
    let (base_s, base_pop) = timed_best(5, || {
        simulate_population_baseline(n, j, variation, horizon, seed)
    });
    let (opt_s, opt_pop) = timed_best(5, || simulate_population(n, j, variation, horizon, seed));
    assert_eq!(
        base_pop.ttfs.len(),
        opt_pop.ttfs.len(),
        "both populations must fully fail"
    );
    let medians = (
        base_pop.median().expect("failures").as_hours(),
        opt_pop.median().expect("failures").as_hours(),
    );
    rows.push(Row {
        name: "em_population",
        baseline_s: base_s,
        optimized_s: opt_s,
        note: format!(
            "{n} wires to failure; median {:.2} h (baseline) vs {:.2} h (engine)",
            medians.0, medians.1
        ),
    });

    // --- Guardband Monte-Carlo -------------------------------------------
    let config = LifetimeConfig {
        years: 0.2,
        ..LifetimeConfig::default()
    };
    let seeds = 0u64..8;
    let (base_s, base_gb) = timed_best(5, || {
        monte_carlo_guardband_baseline(&config, Policy::PassiveIdle, seeds.clone()).unwrap()
    });
    let (opt_s, opt_gb) = timed_best(5, || {
        monte_carlo_guardband(&config, Policy::PassiveIdle, seeds.clone()).unwrap()
    });
    let max_rel = base_gb
        .iter()
        .zip(&opt_gb)
        .map(|(b, o)| (b - o).abs() / b.max(1e-12))
        .fold(0.0f64, f64::max);
    assert!(
        max_rel < 1e-3,
        "solver swap must not move the guardband: rel {max_rel:e}"
    );
    rows.push(Row {
        name: "guardband_mc",
        baseline_s: base_s,
        optimized_s: opt_s,
        note: format!(
            "{} seeds x {:.1} y; guardbands agree to {max_rel:.1e} rel",
            base_gb.len(),
            config.years
        ),
    });

    // --- CET ensemble stress ----------------------------------------------
    let ensemble = TrapEnsemble::paper_calibrated(2000).unwrap();
    let stress_hours = 6.0;
    let (base_s, base_mv) = timed_best(5, || {
        let mut e = ensemble.clone();
        e.stress_reference(
            Seconds::from_hours(stress_hours),
            StressCondition::ACCELERATED,
        );
        e.delta_vth_mv()
    });
    let (opt_s, opt_mv) = timed_best(5, || {
        let mut e = ensemble.clone();
        e.stress(
            Seconds::from_hours(stress_hours),
            StressCondition::ACCELERATED,
        );
        e.delta_vth_mv()
    });
    let rel = (base_mv - opt_mv).abs() / base_mv.max(1e-12);
    assert!(
        rel < 1e-9,
        "restructured stress must match the reference: rel {rel:e}"
    );
    rows.push(Row {
        name: "cet_stress",
        baseline_s: base_s,
        optimized_s: opt_s,
        note: format!("2000 traps x {stress_hours} h; dVth agrees to {rel:.1e} rel"),
    });

    // --- Calibration memo --------------------------------------------------
    // A trap count nothing else in this process uses, so the first call
    // really fits and the second really hits the cache.
    let targets = TableOneTargets::measurement_column();
    let fits_before = deep_healing::bti::cet::calibration_fit_runs();
    let (cold_s, _) = timed(|| TrapEnsemble::calibrated(1234, &targets).unwrap());
    let (warm_s, _) = timed(|| TrapEnsemble::calibrated(1234, &targets).unwrap());
    let fits_after = deep_healing::bti::cet::calibration_fit_runs();
    assert_eq!(
        fits_after - fits_before,
        1,
        "exactly one fit for two calibrated() calls"
    );
    rows.push(Row {
        name: "calibration_memo",
        baseline_s: cold_s,
        optimized_s: warm_s,
        note: "cold (fitting) vs warm (memoized) calibrated() call, 1234 traps".into(),
    });

    // --- Report -------------------------------------------------------------
    let mut json = String::from("{\n  \"pr\": 1,\n  \"threads\": ");
    json.push_str(&dh_exec::max_threads().to_string());
    json.push_str(",\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  \"{}\": {{\"baseline_s\": {:.6}, \"optimized_s\": {:.6}, \"speedup\": {:.2}, \"note\": \"{}\"}}{}\n",
            row.name,
            row.baseline_s,
            row.optimized_s,
            row.speedup(),
            row.note,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr1.json");
    std::fs::write(path, &json).expect("write BENCH_pr1.json");

    for row in &rows {
        println!(
            "{:<18} baseline {:>9.3} ms   optimized {:>9.3} ms   speedup {:>6.2}x   ({})",
            row.name,
            row.baseline_s * 1e3,
            row.optimized_s * 1e3,
            row.speedup(),
            row.note,
        );
    }
    println!("wrote {path}");
}
