//! Performance snapshot for the `dh-serve` daemon PR.
//!
//! Measures the optimized engine against its in-tree baselines **in the
//! same run** (same binary, same machine, same optimization flags) and
//! writes the results to `BENCH_pr9.json` in the workspace root
//! (`BENCH_pr1.json`–`BENCH_pr7.json` are kept as history). The headline
//! metric for the fleet rows is **device·epochs per second**.
//!
//! * CET ensemble stress, pinned to 1 thread: the lane-batched `dh-simd`
//!   kernel (group-granular saturated fast path, reused thread-local gate
//!   scratch) vs the retained PR 2 SoA libm kernel — the acceptance
//!   metric is a ≥2× single-thread speedup with ≤1e-12 relative dVth
//!   agreement against the scalar reference. The row also reports the
//!   per-call allocation counts before/after the scratch-reuse change.
//! * The same comparison at the default thread count.
//! * CET ensemble recovery: the `dh-simd` `exp(−x)` kernel vs the PR 2
//!   per-trap libm kernel.
//! * EM stress-PDE stencil: the vectorized flux/update stencil with
//!   hoisted reciprocal tables vs the retained PR 4 division-based
//!   substep (≤1e-9 relative resistance agreement — the two differ only
//!   in rounding).
//! * Guardband Monte-Carlo and calibration memo: unchanged from PR 2/4,
//!   re-measured for history.
//! * Fleet simulation: the retained **per-chip reference path**
//!   (`run_fleet_reference`, serial AoS chip stepping) vs the columnar
//!   `ChipStore` engine at the default thread count, with
//!   device·epochs/s for both. The row asserts the reports are
//!   bit-identical, that the fingerprint is invariant under `DH_SIMD`
//!   backend forcing, and — the allocation satellite — that the
//!   columnar engine's steady-state allocations/run dropped well below
//!   the PR 6 count (17,557/run): the slab pool reuses every column and
//!   outcome buffer across shards.
//! * Fleet thread-scaling rows at 4/8/16 workers against the same serial
//!   reference (all fingerprints equal). The JSON records the host core
//!   count — on a 1-core host the extra workers cannot speed anything up
//!   and the rows measure scheduling overhead honestly.
//! * Fleet scale rows: 10^6 devices, and a completed 10^7-device row
//!   (one epoch), both with device·epochs/s and shards sized by
//!   `auto_shard_size` from the worker count (the PR 6 fixed 8,192-chip
//!   shards are what regressed the 10^6 parallel row to 0.89×).
//! * Checkpointed fleet run: the synchronous per-shard writer vs the
//!   double-buffered async writer thread — fingerprints equal and the
//!   final checkpoint **bytes identical**, the DHFL v2 compatibility
//!   criterion.
//! * `dh-serve` daemon row: an in-process server driven by concurrent
//!   HTTP clients over real sockets — sustained jobs/sec and the p99
//!   submit→first-event latency, with every job's fingerprint checked
//!   against a direct in-process engine run of the same config.
//! * Scenario pack row: the built-in SRAM-decoder pack integrated
//!   element by element through the scalar `WearModel` reference vs the
//!   sharded columnar scenario engine (element·epochs/s, mean ΔVth
//!   agreement ≤1e-9 mV, run fingerprint recorded).
//!
//! With `--obs` (and the `obs` feature compiled in), the snapshot also
//! embeds the full `dh-obs` metrics registry under a `"metrics"` key.
//! Without the feature the flag only prints a warning: the default build
//! must stay instrumentation-free.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use deep_healing::bti::calibration::TableOneTargets;
use deep_healing::fleet::{run_fleet_checkpointed_with, run_fleet_reference, CheckpointMode};
use deep_healing::prelude::*;
use dh_serve::{client as serve_client, ServeConfig, Server};

/// Counts every heap allocation so the scratch-reuse rows can report
/// before/after allocation counts, not just wall time.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Heap allocations performed while `f` ran (this thread and every
/// worker — the counter is process-global).
fn count_allocs<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let v = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, v)
}

/// Times a closure, returning (seconds, result).
fn timed<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t = Instant::now();
    let v = f();
    (t.elapsed().as_secs_f64(), v)
}

/// Times a closure over several repetitions, returning the fastest time and
/// the last result. Scheduler noise is strictly additive, so the minimum is
/// the estimator closest to the true cost.
fn timed_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let (mut best, mut out) = timed(&mut f);
    for _ in 1..reps {
        let (s, v) = timed(&mut f);
        if s < best {
            best = s;
        }
        out = v;
    }
    (best, out)
}

struct Row {
    name: &'static str,
    baseline_s: f64,
    optimized_s: f64,
    note: String,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.baseline_s / self.optimized_s.max(1e-12)
    }
}

const TRAPS: usize = 2000;
const STRESS_HOURS: f64 = 6.0;
const REPS: usize = 9;

/// Device·epochs folded per second — the fleet throughput headline.
fn throughput(config: &FleetConfig, secs: f64) -> f64 {
    (config.devices * config.total_epochs()) as f64 / secs.max(1e-12)
}

/// Submits one job to a `dh-serve` daemon and tails its SSE stream on a
/// raw socket. Returns the submit→first-event latency in seconds and
/// the fingerprint string from the terminal `completed` event.
fn serve_job_round_trip(addr: SocketAddr, body: &str) -> (f64, String) {
    let t0 = Instant::now();
    let accepted = serve_client::request(addr, "POST", "/jobs", Some(body)).expect("submit");
    assert_eq!(accepted.status, 202, "submit refused: {}", accepted.body);
    let id: u64 = accepted
        .body
        .split("\"id\": ")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|n| n.trim().parse().ok())
        .expect("202 body carries the job id");

    // Stream the events endpoint line by line so the first-event
    // timestamp is real, not read-to-EOF time.
    let mut stream = TcpStream::connect(addr).expect("connect SSE");
    let head = format!(
        "GET /jobs/{id}/events HTTP/1.1\r\nHost: dh-serve\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
    );
    stream.write_all(head.as_bytes()).expect("send SSE request");
    let mut reader = BufReader::new(stream);
    let mut first_event_s = None;
    let mut last_data = String::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line).expect("read SSE") == 0 {
            break;
        }
        if let Some(data) = line.strip_prefix("data: ") {
            first_event_s.get_or_insert_with(|| t0.elapsed().as_secs_f64());
            last_data = data.trim_end().to_string();
        }
    }
    let fingerprint = last_data
        .split("\"fingerprint\": \"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("terminal event carries the fingerprint")
        .to_string();
    (first_event_s.expect("at least one event"), fingerprint)
}

/// Benchmarks one stress configuration: the PR 2 SoA libm kernel as the
/// baseline, the SIMD kernel as the optimized path, and the scalar
/// reference as the agreement anchor (same adaptive schedule as both).
fn stress_row(name: &'static str, ensemble: &TrapEnsemble, threads: usize) -> Row {
    let dt = Seconds::from_hours(STRESS_HOURS);
    let cond = StressCondition::ACCELERATED;

    let (base_s, _pr2_mv) = timed_best(REPS, || {
        let mut e = ensemble.clone();
        e.stress_pr2(dt, cond);
        e.delta_vth_mv()
    });
    let (opt_s, opt_mv) = timed_best(REPS, || {
        let mut e = ensemble.clone();
        e.stress(dt, cond);
        e.delta_vth_mv()
    });
    let ref_mv = {
        let mut e = ensemble.clone();
        e.stress_reference(dt, cond);
        e.delta_vth_mv()
    };
    let rel = (ref_mv - opt_mv).abs() / ref_mv.max(1e-12);
    assert!(
        rel <= 1e-12,
        "SIMD kernel must match the scalar reference: rel {rel:e}"
    );

    // Scratch-reuse satellite: per-call allocation counts, measured warm
    // (the thread-local gate scratch is already grown). The PR 2 kernel
    // allocates its gate trajectory every call; the SIMD kernel must not.
    let mut warm = ensemble.clone();
    warm.stress(dt, cond); // grow the scratch once
    let mut e = ensemble.clone();
    let (opt_allocs, _) = count_allocs(|| e.stress(dt, cond));
    let mut e = ensemble.clone();
    let (base_allocs, _) = count_allocs(|| e.stress_pr2(dt, cond));

    Row {
        name,
        baseline_s: base_s,
        optimized_s: opt_s,
        note: format!(
            "{TRAPS} traps x {STRESS_HOURS} h, {threads} thread(s), {} backend; \
             PR2 SoA libm kernel vs dh-simd lane kernel; dVth agrees with reference \
             to {rel:.1e} rel; warm allocs/call {base_allocs} -> {opt_allocs}",
            deep_healing::simd::backend_name(),
        ),
    }
}

fn main() {
    let want_obs = std::env::args().skip(1).any(|a| a == "--obs");
    if want_obs && !dh_obs::ENABLED {
        eprintln!(
            "warning: --obs requested but the `obs` feature is not compiled in; \
             rebuild with `--features obs` to embed a metrics snapshot"
        );
    }
    let default_threads = dh_exec::max_threads();
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut rows = Vec::new();

    let ensemble = TrapEnsemble::paper_calibrated(TRAPS).unwrap();

    // --- CET stress, single thread (the acceptance metric) ----------------
    dh_exec::set_max_threads(Some(1));
    let single = stress_row("cet_stress", &ensemble, 1);
    dh_exec::set_max_threads(None);
    assert!(
        single.speedup() >= 2.0,
        "single-thread cet_stress speedup {:.2}x is below the 2x target",
        single.speedup()
    );
    rows.push(single);

    // --- CET stress, default threads ---------------------------------------
    rows.push(stress_row(
        "cet_stress_parallel",
        &ensemble,
        default_threads,
    ));

    // --- CET recovery -------------------------------------------------------
    let stressed = {
        let mut e = ensemble.clone();
        e.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
        e
    };
    let recover_dt = Seconds::from_hours(STRESS_HOURS);
    let (base_s, _pr2_mv) = timed_best(REPS, || {
        let mut e = stressed.clone();
        e.recover_pr2(recover_dt, RecoveryCondition::ACTIVE_ACCELERATED);
        e.delta_vth_mv()
    });
    let (opt_s, opt_mv) = timed_best(REPS, || {
        let mut e = stressed.clone();
        e.recover(recover_dt, RecoveryCondition::ACTIVE_ACCELERATED);
        e.delta_vth_mv()
    });
    let ref_mv = {
        let mut e = stressed.clone();
        e.recover_reference(recover_dt, RecoveryCondition::ACTIVE_ACCELERATED);
        e.delta_vth_mv()
    };
    let rel = (ref_mv - opt_mv).abs() / ref_mv.max(1e-12);
    assert!(
        rel <= 1e-12,
        "recovery kernel must match the scalar reference: rel {rel:e}"
    );
    rows.push(Row {
        name: "cet_recover",
        baseline_s: base_s,
        optimized_s: opt_s,
        note: format!(
            "{TRAPS} traps x {STRESS_HOURS} h active-accelerated recovery; \
             PR2 per-trap libm kernel vs dh-simd exp(-x) kernel; dVth agrees \
             with reference to {rel:.1e} rel"
        ),
    });

    // --- EM stress-PDE stencil ----------------------------------------------
    let j = CurrentDensity::from_ma_per_cm2(7.96);
    let em_dt = Seconds::from_minutes(60.0);
    let (base_s, base_r) = timed_best(REPS, || {
        let mut w = EmWire::paper_wire();
        w.advance_pr4(em_dt, j);
        w.resistance().value()
    });
    let (opt_s, opt_r) = timed_best(REPS, || {
        let mut w = EmWire::paper_wire();
        w.advance(em_dt, j);
        w.resistance().value()
    });
    let rel = (base_r - opt_r).abs() / base_r.max(1e-12);
    assert!(
        rel <= 1e-9,
        "vectorized stencil must track the PR4 substep: rel {rel:e}"
    );
    rows.push(Row {
        name: "em_stencil",
        baseline_s: base_s,
        optimized_s: opt_s,
        note: format!(
            "paper wire, 60 min stress; PR4 division substep vs vectorized stencil \
             with hoisted reciprocals; resistance agrees to {rel:.1e} rel"
        ),
    });

    // --- Guardband Monte-Carlo ----------------------------------------------
    let lifetime = LifetimeConfig {
        years: 0.2,
        ..LifetimeConfig::default()
    };
    let policy = Policy::periodic_deep_default();
    let (base_s, base_gb) = timed(|| {
        deep_healing::sched::lifetime::monte_carlo_guardband_baseline(&lifetime, policy, 0..8)
            .unwrap()
    });
    let (opt_s, opt_gb) = timed(|| {
        deep_healing::sched::lifetime::monte_carlo_guardband(&lifetime, policy, 0..8).unwrap()
    });
    let rel = base_gb
        .iter()
        .zip(&opt_gb)
        .map(|(b, o)| (b.guardband - o.guardband).abs() / b.guardband.max(1e-12))
        .fold(0.0, f64::max);
    assert!(
        rel <= 1e-8,
        "parallel guardbands must match the serial reference: rel {rel:e}"
    );
    rows.push(Row {
        name: "guardband_mc",
        baseline_s: base_s,
        optimized_s: opt_s,
        note: format!(
            "8 seeds x 0.2 y, periodic-deep policy; serial reference loop vs \
             self-scheduling parallel sweep; guardbands agree to {rel:.1e} rel"
        ),
    });

    // --- Calibration memo ----------------------------------------------------
    // A trap count nothing else in this process uses, so the first call
    // really fits and the second really hits the bounded cache.
    let targets = TableOneTargets::measurement_column();
    let fits_before = deep_healing::bti::cet::calibration_fit_runs();
    let (cold_s, _) = timed(|| TrapEnsemble::calibrated(1234, &targets).unwrap());
    let (warm_s, _) = timed(|| TrapEnsemble::calibrated(1234, &targets).unwrap());
    let fits_after = deep_healing::bti::cet::calibration_fit_runs();
    assert_eq!(
        fits_after - fits_before,
        1,
        "exactly one fit for two calibrated() calls"
    );
    rows.push(Row {
        name: "calibration_memo",
        baseline_s: cold_s,
        optimized_s: warm_s,
        note: "cold (fitting) vs warm (memoized) calibrated() call, 1234 traps".into(),
    });

    // --- Fleet simulation: per-chip reference vs the columnar engine ---------
    let fleet_config = FleetConfig {
        devices: 8_192,
        years: 0.5,
        shard_size: 512,
        ..FleetConfig::default()
    };
    let (serial_s, (serial_report, _)) =
        timed(|| run_fleet_reference(&fleet_config, None).unwrap());
    let (opt_s, parallel_report) = timed(|| run_fleet(&fleet_config).unwrap());
    let (fleet_allocs, _) = count_allocs(|| run_fleet(&fleet_config).unwrap());
    let (ref_allocs, _) = count_allocs(|| run_fleet_reference(&fleet_config, None).unwrap());
    assert_eq!(
        serial_report.fingerprint(),
        parallel_report.fingerprint(),
        "columnar fleet report must be bit-identical to the per-chip reference"
    );
    // Allocation satellite: the slab pool reuses every column and outcome
    // buffer across shards, so the columnar engine must run in a small
    // fraction of the PR 6 steady-state allocation count (17,557/run).
    assert!(
        fleet_allocs < 17_557 / 2,
        "columnar fleet run allocated {fleet_allocs} times; the slab pool \
         must cut the PR 6 count (17,557) by well over half"
    );
    // SIMD-backend invariance: forcing the scalar backend must not move a
    // single bit of the fleet report.
    deep_healing::simd::force_scalar(true);
    let scalar_report = run_fleet(&fleet_config).unwrap();
    deep_healing::simd::force_scalar(false);
    assert_eq!(
        serial_report.fingerprint(),
        scalar_report.fingerprint(),
        "fleet report must be bit-identical with the SIMD backend forced off"
    );
    rows.push(Row {
        name: "fleet_sim",
        baseline_s: serial_s,
        optimized_s: opt_s,
        note: format!(
            "{} devices x {} epochs, worst-first; per-chip reference {:.2e} vs \
             columnar on {} threads {:.2e} device-epochs/s; allocs/run \
             {ref_allocs} -> {fleet_allocs} (PR6: 17557); fingerprints \
             bit-identical across engines, thread counts and SIMD backends \
             ({:#018x})",
            fleet_config.devices,
            fleet_config.total_epochs(),
            throughput(&fleet_config, serial_s),
            default_threads,
            throughput(&fleet_config, opt_s),
            parallel_report.fingerprint(),
        ),
    });

    // --- Fleet thread scaling: 4 / 8 / 16 workers ----------------------------
    for &threads in &[4usize, 8, 16] {
        dh_exec::set_max_threads(Some(threads));
        let (t_s, report) = timed(|| run_fleet(&fleet_config).unwrap());
        dh_exec::set_max_threads(None);
        assert_eq!(
            report.fingerprint(),
            serial_report.fingerprint(),
            "fleet report must be bit-identical at {threads} threads"
        );
        rows.push(Row {
            name: match threads {
                4 => "fleet_threads_4",
                8 => "fleet_threads_8",
                _ => "fleet_threads_16",
            },
            baseline_s: serial_s,
            optimized_s: t_s,
            note: format!(
                "{} devices x {} epochs on {threads} workers ({host_cores} host \
                 core(s)): {:.2e} device-epochs/s, fingerprint identical to the \
                 serial reference",
                fleet_config.devices,
                fleet_config.total_epochs(),
                throughput(&fleet_config, t_s),
            ),
        });
    }

    // --- Fleet scale: 10^6 and 10^7 devices ----------------------------------
    // Shards are sized from the worker count (`auto_shard_size`) exactly
    // as the fleet bin now does by default; the serial baseline gets the
    // 1-worker sizing so each path runs its own best configuration. The
    // report is shard-size invariant, so the fingerprints must still match.
    let mega_base = FleetConfig {
        devices: 1_000_000,
        years: 0.1,
        ..FleetConfig::default()
    };
    let mega_serial_cfg = FleetConfig {
        shard_size: mega_base.auto_shard_size(1),
        ..mega_base.clone()
    };
    let mega = FleetConfig {
        shard_size: mega_base.auto_shard_size(default_threads),
        ..mega_base
    };
    dh_exec::set_max_threads(Some(1));
    let (mega_serial_s, mega_serial) = timed_best(3, || run_fleet(&mega_serial_cfg).unwrap());
    dh_exec::set_max_threads(None);
    let (mega_s, mega_report) = timed_best(3, || run_fleet(&mega).unwrap());
    assert_eq!(mega_serial.fingerprint(), mega_report.fingerprint());
    rows.push(Row {
        name: "fleet_scale_1e6",
        baseline_s: mega_serial_s,
        optimized_s: mega_s,
        note: format!(
            "10^6 devices x {} epochs, auto-sized shards ({} serial / {} on \
             {} workers): serial {:.2e} vs parallel {:.2e} device-epochs/s",
            mega.total_epochs(),
            mega_serial_cfg.shard_size,
            mega.shard_size,
            default_threads,
            throughput(&mega, mega_serial_s),
            throughput(&mega, mega_s),
        ),
    });

    let deca_base = FleetConfig {
        devices: 10_000_000,
        years: 0.01, // one scheduling epoch: the row must *complete*
        ..FleetConfig::default()
    };
    let deca_serial_cfg = FleetConfig {
        shard_size: deca_base.auto_shard_size(1),
        ..deca_base.clone()
    };
    let deca = FleetConfig {
        shard_size: deca_base.auto_shard_size(default_threads),
        ..deca_base
    };
    dh_exec::set_max_threads(Some(1));
    let (deca_serial_s, deca_serial) = timed_best(3, || run_fleet(&deca_serial_cfg).unwrap());
    dh_exec::set_max_threads(None);
    let (deca_s, deca_report) = timed_best(3, || run_fleet(&deca).unwrap());
    assert_eq!(deca_serial.fingerprint(), deca_report.fingerprint());
    rows.push(Row {
        name: "fleet_scale_1e7",
        baseline_s: deca_serial_s,
        optimized_s: deca_s,
        note: format!(
            "10^7 devices x {} epoch(s), completed, auto-sized shards \
             ({} serial / {} on {} workers): serial {:.2e} vs parallel \
             {:.2e} device-epochs/s (fingerprint {:#018x})",
            deca.total_epochs(),
            deca_serial_cfg.shard_size,
            deca.shard_size,
            default_threads,
            throughput(&deca, deca_serial_s),
            throughput(&deca, deca_s),
            deca_report.fingerprint(),
        ),
    });

    // --- Checkpointing: sync writer vs async writer thread --------------------
    let ckpt_config = FleetConfig {
        devices: 65_536,
        years: 0.25,
        shard_size: 2_048,
        ..FleetConfig::default()
    };
    let dir = std::env::temp_dir().join("dh-perf-snapshot-ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    let path = dir.join("run.dhfl");

    let (sync_s, sync_report) = timed(|| {
        run_fleet_checkpointed_with(&ckpt_config, &path, 1, CheckpointMode::Sync).unwrap()
    });
    let sync_bytes = std::fs::read(&path).expect("read sync checkpoint");
    std::fs::remove_file(&path).expect("reset checkpoint");
    let (async_s, async_report) = timed(|| {
        run_fleet_checkpointed_with(&ckpt_config, &path, 1, CheckpointMode::Async).unwrap()
    });
    let async_bytes = std::fs::read(&path).expect("read async checkpoint");
    assert_eq!(
        sync_report.fingerprint(),
        async_report.fingerprint(),
        "checkpoint writer mode must not change the report"
    );
    assert_eq!(
        sync_bytes, async_bytes,
        "final checkpoint bytes must be identical sync vs async"
    );
    let _ = std::fs::remove_dir_all(&dir);
    rows.push(Row {
        name: "checkpoint_async",
        baseline_s: sync_s,
        optimized_s: async_s,
        note: format!(
            "{} devices x {} epochs, checkpoint every shard ({} shards): sync \
             writer vs double-buffered async writer thread; {:.2e} vs {:.2e} \
             device-epochs/s; reports and final checkpoint bytes identical",
            ckpt_config.devices,
            ckpt_config.total_epochs(),
            ckpt_config.shard_count(),
            throughput(&ckpt_config, sync_s),
            throughput(&ckpt_config, async_s),
        ),
    });

    // --- dh-serve daemon: jobs/sec and submit -> first-event latency ----------
    let serve_dir = std::env::temp_dir().join("dh-perf-snapshot-serve");
    let _ = std::fs::remove_dir_all(&serve_dir);
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        queue_capacity: 64,
        concurrency: 2,
        step_shards: 8,
        pace: std::time::Duration::ZERO,
        data_dir: serve_dir.clone(),
        scenario_dir: None,
        job_deadline: None,
    })
    .expect("start dh-serve");
    let serve_addr = server.local_addr();
    // The job the clients hammer: defaults except where stated, so the
    // daemon and the in-process engine build the identical FleetConfig.
    let serve_config = FleetConfig {
        devices: 2_048,
        years: 0.1,
        shard_size: 256,
        ..FleetConfig::default()
    };
    let serve_body =
        "{\"config\": {\"devices\": 2048, \"years\": 0.1, \"shard_size\": 256}}".to_string();
    let (direct_s, direct_report) = timed(|| run_fleet(&serve_config).unwrap());
    let expected_fp = format!("{:#018x}", direct_report.fingerprint());

    const SERVE_CLIENTS: usize = 4;
    const SERVE_JOBS_PER_CLIENT: usize = 8;
    let (serve_wall_s, mut latencies) = timed(|| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..SERVE_CLIENTS)
                .map(|_| {
                    let body = &serve_body;
                    let expected = &expected_fp;
                    scope.spawn(move || {
                        (0..SERVE_JOBS_PER_CLIENT)
                            .map(|_| {
                                let (latency_s, fp) = serve_job_round_trip(serve_addr, body);
                                assert_eq!(
                                    &fp, expected,
                                    "daemon job fingerprint diverged from the engine"
                                );
                                latency_s
                            })
                            .collect::<Vec<f64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("serve client thread"))
                .collect::<Vec<f64>>()
        })
    });
    server.shutdown();
    let _ = std::fs::remove_dir_all(&serve_dir);
    latencies.sort_by(f64::total_cmp);
    let total_jobs = latencies.len();
    let quantile = |q: f64| latencies[((total_jobs - 1) as f64 * q).round() as usize];
    let jobs_per_sec = total_jobs as f64 / serve_wall_s.max(1e-12);
    rows.push(Row {
        name: "serve_daemon",
        baseline_s: direct_s,
        optimized_s: serve_wall_s / total_jobs as f64,
        note: format!(
            "{total_jobs} jobs ({} devices x {} epochs each) from {SERVE_CLIENTS} \
             concurrent HTTP clients over 2 workers: {jobs_per_sec:.2} jobs/s \
             sustained, submit->first-event p50 {:.1} ms / p99 {:.1} ms; every \
             job's fingerprint equals the in-process engine's ({expected_fp}); \
             baseline is one direct run_fleet of the same config",
            serve_config.devices,
            serve_config.total_epochs(),
            quantile(0.50) * 1e3,
            quantile(0.99) * 1e3,
        ),
    });

    // --- Scenario pack: scalar WearModel reference vs columnar engine --------
    // The built-in SRAM-decoder pack, integrated twice: element by
    // element through the scalar `WearModel` reference units, and
    // through the sharded columnar engine. The two are the same math by
    // the crate's proptest contract; the row records what the batched
    // path buys at pack scale (metric: element-epochs/s).
    let scenario_pack = dh_scenario::ScenarioRegistry::builtin()
        .get("sram-decoder")
        .expect("builtin pack")
        .pack
        .clone();
    let scenario_work = scenario_pack.total_elements() * scenario_pack.epochs;
    let (scalar_s, scalar_mean) = timed(|| {
        let mut sum = 0.0f64;
        for (gi, block) in scenario_pack.blocks.iter().enumerate() {
            let g = scenario_pack.group_ctx(gi);
            let stress = g.stress_condition();
            let (passive, active) = g.recovery_conditions();
            let dh_scenario::BlockModel::SramDecoder { skew } = &block.model else {
                panic!("sram-decoder pack grew a non-SRAM group");
            };
            for rank in 0..block.count {
                let mut unit = dh_scenario::SramDecoder::from_group(g, *skew, rank);
                for e in 1..=scenario_pack.epochs {
                    let ctx = scenario_pack.epoch_ctx(e);
                    let rec = if ctx.active_recovery { active } else { passive };
                    unit.run_epoch(ctx, stress, rec);
                }
                sum += dh_bti::WearModel::delta_vth_mv(&unit);
            }
        }
        sum / scenario_pack.total_elements() as f64
    });
    let (columnar_s, scenario_report) = timed(|| dh_scenario::run_pack(scenario_pack.clone()));
    let columnar_mean = {
        let total: f64 = scenario_report
            .groups
            .iter()
            .map(|g| g.mean_metric_mv * g.count as f64)
            .sum();
        total / scenario_pack.total_elements() as f64
    };
    assert!(
        (scalar_mean - columnar_mean).abs() <= 1e-9,
        "scenario engine drifted from the scalar reference: {scalar_mean} vs {columnar_mean}"
    );
    rows.push(Row {
        name: "scenario_pack",
        baseline_s: scalar_s,
        optimized_s: columnar_s,
        note: format!(
            "built-in {} pack ({} elements x {} epochs): scalar WearModel \
             reference vs sharded columnar engine; {:.2e} vs {:.2e} \
             element-epochs/s; mean dVth agrees to <=1e-9 mV ({:.3} mV), run \
             fingerprint {:#018x}",
            scenario_report.scenario,
            scenario_pack.total_elements(),
            scenario_pack.epochs,
            scenario_work as f64 / scalar_s.max(1e-12),
            scenario_work as f64 / columnar_s.max(1e-12),
            columnar_mean,
            scenario_report.fingerprint,
        ),
    });

    // --- Report -------------------------------------------------------------
    let embed_metrics = want_obs && dh_obs::ENABLED;
    let mut json = String::from("{\n  \"pr\": 9,\n  \"threads\": ");
    json.push_str(&default_threads.to_string());
    json.push_str(",\n  \"host_cores\": ");
    json.push_str(&host_cores.to_string());
    json.push_str(",\n  \"simd_backend\": \"");
    json.push_str(deep_healing::simd::backend_name());
    json.push_str("\",\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  \"{}\": {{\"baseline_s\": {:.6}, \"optimized_s\": {:.6}, \"speedup\": {:.2}, \"note\": \"{}\"}}{}\n",
            row.name,
            row.baseline_s,
            row.optimized_s,
            row.speedup(),
            row.note,
            if i + 1 < rows.len() || embed_metrics { "," } else { "" },
        ));
    }
    if embed_metrics {
        json.push_str("  \"metrics\": ");
        json.push_str(&dh_obs::snapshot().to_json());
        json.push('\n');
    }
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr9.json");
    std::fs::write(path, &json).expect("write BENCH_pr9.json");

    for row in &rows {
        println!(
            "{:<20} baseline {:>9.3} ms   optimized {:>9.3} ms   speedup {:>6.2}x   ({})",
            row.name,
            row.baseline_s * 1e3,
            row.optimized_s * 1e3,
            row.speedup(),
            row.note,
        );
    }
    println!("wrote {path}");
}
