//! Reproduces **Fig. 5**: EM resistance under accelerated stress (void
//! nucleation then growth) followed by active vs passive recovery at
//! 230 °C and ±7.96 MA/cm²; a permanent component remains.

use deep_healing::experiments;
use dh_bench::{banner, verdict};

fn main() {
    banner("Fig. 5 — EM stress, then active vs passive recovery");
    let out = experiments::fig5();
    print!("{}", experiments::render_fig5(&out));
    println!();
    verdict(
        "active recovery within 1/5 stress time",
        ">75% recovered",
        format!("{:.1}% recovered", out.active_recovered_fraction * 100.0),
    );
    verdict(
        "permanent component after late recovery",
        "present (non-zero)",
        format!("{:.2} Ω residual", out.permanent_delta_r),
    );
    verdict(
        "nucleation phase duration",
        "~200 min (flat R)",
        format!(
            "{:.0} min",
            out.nucleation_time
                .map(|t| t.as_minutes())
                .unwrap_or(f64::NAN)
        ),
    );
}
