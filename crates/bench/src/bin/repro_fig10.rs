//! Reproduces **Fig. 10**: load size vs normalized delay (rises to ≈1.8×
//! at 5× load) and mode-switching time (falls with a diminishing rate).

use deep_healing::experiments;
use dh_bench::{banner, verdict};

fn main() {
    banner("Fig. 10 — load size vs performance and switching time");
    let points = experiments::fig10();
    print!("{}", experiments::render_fig10(&points));
    println!();
    let last = points.last().expect("five sizes");
    verdict(
        "normalized delay at 5× load",
        "≈1.8×",
        format!("{:.2}×", last.normalized_delay),
    );
    verdict(
        "switching time trend",
        "decreases, slower rate",
        format!("{:.2}× at 5× load", last.normalized_switching_time),
    );
}
