//! Ablation: the EM recovery-condition matrix (the paper's Fig. 2(b),
//! completing the Table I analogy for interconnect).
//!
//! After a fixed accelerated stress, the wire recovers for 100 minutes
//! under each combination of the two knobs: current (removed vs reversed)
//! and temperature (room vs oven).

use deep_healing::em::schedule::condition_matrix;
use deep_healing::prelude::*;
use dh_bench::banner;

fn main() {
    banner("Ablation — EM recovery-condition matrix (Fig. 2(b))");
    let outs = condition_matrix(
        CurrentDensity::from_ma_per_cm2(7.96),
        Seconds::from_minutes(500.0),
        Seconds::from_minutes(100.0),
    );
    println!(
        "{:>3} {:>18} {:>14} {:>18}",
        "#", "current", "temperature", "recovered"
    );
    for o in &outs {
        println!(
            "{:>3} {:>18} {:>13.0} {:>17.1}%",
            o.condition_no,
            if o.reverse_current {
                "reversed"
            } else {
                "removed"
            },
            o.temperature.to_celsius(),
            o.recovered_fraction * 100.0,
        );
    }
    println!(
        "\nSame structure as the BTI Table I: temperature *accelerates*\n\
         (Arrhenius diffusivity — room temperature freezes the lattice),\n\
         reversal *activates* (back-flow into the void), and deep healing\n\
         needs both."
    );
}
