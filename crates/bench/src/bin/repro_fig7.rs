//! Reproduces **Fig. 7**: periodic recovery intervals scheduled during the
//! void-nucleation phase delay nucleation (paper: "almost 3× slower") and
//! extend the overall time-to-failure.

use deep_healing::experiments;
use dh_bench::{banner, verdict};

fn main() {
    banner("Fig. 7 — periodic scheduled recovery during nucleation");
    let out = experiments::fig7();
    print!("{}", experiments::render_fig7(&out));
    println!();
    verdict(
        "void-nucleation delay",
        "almost 3× slower",
        format!(
            "{:.2}× slower",
            out.nucleation_delay_factor().unwrap_or(f64::NAN)
        ),
    );
    verdict(
        "overall TTF",
        "significantly extended",
        format!(
            "{:.2}× longer",
            out.ttf_extension_factor().unwrap_or(f64::NAN)
        ),
    );
}
