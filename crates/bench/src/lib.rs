//! Shared helpers for the reproduction binaries.
//!
//! Every `repro-*` binary regenerates one table or figure of the paper and
//! prints a paper-vs-measured comparison; `repro-all` runs the lot. The
//! `ablate-*` binaries run the design-choice studies called out in
//! DESIGN.md. Criterion benches (in `benches/`) measure the simulators'
//! performance.

/// Prints a figure/table banner.
pub fn banner(title: &str) {
    let line = "=".repeat(title.len() + 4);
    println!("{line}\n| {title} |\n{line}\n");
}

/// Prints a short paper-vs-ours verdict line.
pub fn verdict(what: &str, paper: &str, ours: String) {
    println!("{what:<44} paper: {paper:<22} ours: {ours}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn banner_does_not_panic() {
        super::banner("Table I");
        super::verdict("x", "y", "z".to_string());
    }
}
