//! A minimal JSON value, parser, and string escaper.
//!
//! The build vendors no serde (and no registry access to get one), so
//! both the `dh-serve` daemon and the `dh-scenario` pack loader parse
//! their documents with the same philosophy as the DHFL checkpoint
//! format: a few dozen explicit lines instead of a dependency. The
//! parser is strict — trailing garbage, duplicate-free object handling,
//! and a recursion cap are all enforced — because every byte it accepts
//! comes off a network socket or an operator-supplied file.
//!
//! This lived inside `crates/serve` until the scenario registry needed
//! it without dragging in the HTTP daemon; `serve::json` remains as a
//! re-export, so daemon-side call sites are unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// Maximum nesting depth a request body may use. Fleet job specs are
/// two levels deep; 32 leaves headroom without letting a hostile body
/// recurse the parser off the stack.
const MAX_DEPTH: u32 = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as a single JSON document (trailing garbage is an
    /// error).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error, with its
    /// byte offset.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.at));
        }
        Ok(value)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number that
    /// fits u64 exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Self::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, token: &str) -> Result<(), String> {
        if self.bytes[self.at..].starts_with(token.as_bytes()) {
            self.at += token.len();
            Ok(())
        } else {
            Err(format!("expected `{token}` at offset {}", self.at))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected byte {:?} at offset {}",
                b as char, self.at
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.at += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii slice");
        let v: f64 = text
            .parse()
            .map_err(|_| format!("bad number `{text}` at offset {start}"))?;
        if !v.is_finite() {
            return Err(format!("number `{text}` overflows f64 at offset {start}"));
        }
        Ok(Json::Num(v))
    }

    fn string(&mut self) -> Result<String, String> {
        self.at += 1; // opening quote
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&hi) {
                                // A surrogate pair: require the low half.
                                self.eat("\\u")?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("lone surrogate half")?
                            };
                            out.push(ch);
                        }
                        _ => return Err(format!("bad escape `\\{}`", esc as char)),
                    }
                }
                // The input is a &str, so multi-byte UTF-8 is already
                // valid; copy continuation bytes through untouched.
                _ => {
                    let len = match b {
                        0x00..=0x1f => return Err("unescaped control byte in string".into()),
                        0x20..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let start = self.at - 1;
                    self.at = start + len;
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.at])
                            .map_err(|_| "bad UTF-8".to_string())?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.bytes.len() < self.at + 4 {
            return Err("truncated \\u escape".into());
        }
        let text = std::str::from_utf8(&self.bytes[self.at..self.at + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        self.at += 4;
        u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape `{text}`"))
    }

    fn array(&mut self, depth: u32) -> Result<Json, String> {
        self.at += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.at)),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, String> {
        self.at += 1; // {
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(format!("expected a key string at offset {}", self.at));
            }
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(format!("expected `:` at offset {}", self.at));
            }
            self.at += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.at)),
            }
        }
    }
}

/// Escapes `s` as the *contents* of a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an f64 as a JSON-safe token (`null` for NaN/Inf, which JSON
/// cannot carry).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_job_shaped_document() {
        let doc = r#"{
            "config": {"devices": 512, "years": 0.25, "policies": ["worst-first", "static"]},
            "inject": "panic=0.01",
            "retry": 3,
            "nested": {"a": [1, -2.5e1, true, null], "b": "x\ny\u0041"}
        }"#;
        let v = Json::parse(doc).unwrap();
        let config = v.get("config").unwrap();
        assert_eq!(config.get("devices").unwrap().as_u64(), Some(512));
        assert_eq!(config.get("years").unwrap().as_f64(), Some(0.25));
        let policies = config.get("policies").unwrap().as_arr().unwrap();
        assert_eq!(policies[0].as_str(), Some("worst-first"));
        assert_eq!(v.get("inject").unwrap().as_str(), Some("panic=0.01"));
        let nested = v.get("nested").unwrap();
        assert_eq!(
            nested.get("a").unwrap().as_arr().unwrap(),
            &[
                Json::Num(1.0),
                Json::Num(-25.0),
                Json::Bool(true),
                Json::Null
            ]
        );
        assert_eq!(nested.get("b").unwrap().as_str(), Some("x\nyA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{}}",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1 2]",
            "{\"a\": 1, \"a\": 2}",
            "\"\\q\"",
            "\"unterminated",
            "nul",
            "01e999",
            "{\"a\": \u{1}\"\"}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // The recursion cap holds.
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f✓";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn num_guards_non_finite() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
