//! Offline stand-in for the subset of the `criterion` 0.5 harness this
//! workspace's benches use: `Criterion`, `benchmark_group` /
//! `sample_size` / `finish`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no network access to crates.io, so instead
//! of criterion's full statistical machinery this harness times each
//! sample with `std::time::Instant` and reports min / median / mean per
//! benchmark. Under `cargo test --benches` (cargo passes `--test`) each
//! bench body runs exactly once as a smoke test with no timing loop.

#![warn(missing_docs)]

use std::time::Instant;

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// How batched inputs are grouped between setup calls. Only the variants
/// this workspace uses are meaningful; all behave identically here
/// (one setup per timed sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timing loop handed to each benchmark body.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    recorded_ns: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize, test_mode: bool) -> Self {
        Self {
            samples,
            test_mode,
            recorded_ns: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // One untimed warm-up pass.
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.recorded_ns.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.recorded_ns.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, test_mode: bool, mut body: F) {
    let mut bencher = Bencher::new(samples, test_mode);
    body(&mut bencher);
    if test_mode {
        println!("test {name} ... ok (bench smoke)");
        return;
    }
    let mut ns = bencher.recorded_ns;
    if ns.is_empty() {
        println!("{name:<56} (no samples recorded)");
        return;
    }
    ns.sort_by(|a, b| a.total_cmp(b));
    let median = ns[ns.len() / 2];
    let mean = ns.iter().sum::<f64>() / ns.len() as f64;
    println!(
        "{name:<56} min {:>12}  median {:>12}  mean {:>12}  (n={})",
        format_ns(ns[0]),
        format_ns(median),
        format_ns(mean),
        ns.len()
    );
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<S, F>(&mut self, name: S, body: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), DEFAULT_SAMPLE_SIZE, self.test_mode, body);
        self
    }

    /// Opens a named group whose sample size can be tuned.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _parent: self,
            name: name.as_ref().to_owned(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            test_mode,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<S, F>(&mut self, name: S, body: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_bench(&full, self.sample_size, self.test_mode, body);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_requested_samples() {
        let mut b = Bencher::new(5, false);
        b.iter(|| 1 + 1);
        assert_eq!(b.recorded_ns.len(), 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut setups = 0;
        let mut b = Bencher::new(4, false);
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 8]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        // One warm-up plus four timed samples.
        assert_eq!(setups, 5);
        assert_eq!(b.recorded_ns.len(), 4);
    }

    #[test]
    fn test_mode_runs_once_without_samples() {
        let mut runs = 0;
        let mut b = Bencher::new(10, true);
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert!(b.recorded_ns.is_empty());
    }
}
