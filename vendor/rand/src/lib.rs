//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, dependency-free implementation of the
//! `rand` items it consumes: [`rngs::StdRng`], [`SeedableRng`], [`RngCore`]
//! and the [`Rng`] extension trait with `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ (public domain,
//! Blackman & Vigna), seeded through a SplitMix64 scramble of the 32-byte
//! seed. It is **not** the ChaCha12 stream the real `rand::rngs::StdRng`
//! produces — streams are therefore not bit-compatible with upstream
//! `rand`, but they are deterministic, portable, and of ample statistical
//! quality for the Monte-Carlo studies here (the workspace's own moment
//! tests cover this). Reproducibility guarantees in this repository are
//! defined against this implementation.

#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from raw random bits (the vendored analogue
/// of sampling from `rand`'s `Standard` distribution).
pub trait SampleStandard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly (the vendored analogue of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "gen_range requires a non-empty finite range, got {:?}",
            self
        );
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard the upper bound against floating-point round-up.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range requires a non-empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of one 64-bit draw is irrelevant at simulation scale.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range requires a non-empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_single(rng)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(!p.is_nan(), "gen_bool probability must not be NaN");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn from_lanes(lanes: [u64; 4]) -> Self {
            // Scramble every lane so weak (e.g. mostly-zero) seeds still
            // start from a well-mixed state, and the all-zero fixed point
            // is unreachable.
            let mut mix = lanes[0] ^ lanes[1].rotate_left(16) ^ 0x9e37_79b9_7f4a_7c15;
            let mut s = [0u64; 4];
            for (lane, slot) in lanes.iter().zip(s.iter_mut()) {
                mix ^= *lane;
                *slot = splitmix64(&mut mix);
            }
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut lanes = [0u64; 4];
            for (lane, chunk) in lanes.iter_mut().zip(seed.chunks_exact(8)) {
                *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            Self::from_lanes(lanes)
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self::from_lanes([
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ])
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::from_seed([7; 32]);
        let mut b = StdRng::from_seed([7; 32]);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = StdRng::from_seed([0; 32]);
        let words: Vec<u64> = (0..16).map(|_| r.gen()).collect();
        assert!(words.iter().any(|&w| w != 0));
    }

    #[test]
    fn f64_standard_is_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y = r.gen_range(f64::EPSILON..1.0);
            assert!(y > 0.0 && y < 1.0);
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let x: u8 = r.gen_range(0u8..4);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x: u32 = r.gen_range(10u32..12);
            assert!((10..12).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(6);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let p = hits as f64 / 20_000.0;
        assert!((p - 0.3).abs() < 0.02, "p = {p}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
