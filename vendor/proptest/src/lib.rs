//! Offline stand-in for the subset of `proptest` 1.x this workspace's
//! property tests use: the `proptest!` macro, `ProptestConfig::with_cases`,
//! range / tuple / `collection::vec` strategies, `prop_assert!`, and
//! `prop_assume!`.
//!
//! The build environment has no network access to crates.io, so this is a
//! small deterministic property-test runner rather than the real engine:
//! inputs are drawn from a fixed-seed RNG (so failures reproduce exactly
//! across runs) and there is **no shrinking** — a failing case reports the
//! raw generated input instead of a minimal one.

#![warn(missing_docs)]

/// Strategies: how values of each type are generated.
pub mod strategy {
    use rand::{rngs::StdRng, Rng};

    /// A generator of values for one test argument.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::{rngs::StdRng, Rng};

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(
                r.start < r.end,
                "vec strategy requires a non-empty length range"
            );
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of elements from an inner strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The case runner and its configuration.
pub mod test_runner {
    use rand::{rngs::StdRng, SeedableRng};

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A `prop_assume!` precondition did not hold; draw a new case.
        Reject,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: String) -> Self {
            Self::Fail(message)
        }
    }

    /// Runner configuration (only the case count is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many accepted cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Drives one property test: draws cases from a fixed-seed RNG and
    /// panics (with the case seed) on the first failure.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Builds a runner for `config`.
        pub fn new(config: ProptestConfig) -> Self {
            Self { config }
        }

        /// Runs the property; `case` returns `Ok` to accept, `Reject` to
        /// skip (not counted), or `Fail` to fail the test.
        pub fn run(&mut self, mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>) {
            let mut accepted = 0u32;
            let mut rejected = 0u64;
            let max_rejects = u64::from(self.config.cases) * 64;
            let mut draw = 0u64;
            while accepted < self.config.cases {
                // Per-case stream: failures name the draw index, so a
                // failing case reproduces in isolation.
                let mut rng = StdRng::seed_from_u64(
                    0x0d_ee94_ea11_u64 ^ draw.wrapping_mul(0x2545_f491_4f6c_dd1d),
                );
                draw += 1;
                match case(&mut rng) {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected <= max_rejects,
                            "too many prop_assume! rejections ({rejected}) after {accepted} accepted cases"
                        );
                    }
                    Err(TestCaseError::Fail(message)) => {
                        panic!("property failed at draw {} : {message}", draw - 1);
                    }
                }
            }
        }
    }
}

/// Everything a property test normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assume, proptest};
}

/// Declares property tests; each `arg in strategy` argument is drawn
/// fresh per case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($config);
                runner.run(|prop_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), prop_rng);
                    )+
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Asserts inside a property body; failure reports the message and fails
/// the test without unwinding through the generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Skips the current case (drawing a replacement) when a precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..9.5, n in 2u8..7) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((2..7).contains(&n), "n = {n}");
        }

        #[test]
        fn tuples_and_vecs_generate(ops in collection::vec((0u8..3, 1u32..10), 1..6)) {
            prop_assert!(!ops.is_empty() && ops.len() < 6);
            for (op, count) in ops {
                prop_assert!(op < 3 && (1..10).contains(&count));
            }
        }

        #[test]
        fn fixed_length_vec(v in collection::vec(0.0f64..1.0, 16)) {
            prop_assert!(v.len() == 16);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        use rand::Rng;
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
            runner.run(|rng| {
                out.push(rng.gen::<u64>());
                Ok(())
            });
        }
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failure_panics_with_message() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4));
        runner.run(|_rng| Err(TestCaseError::fail("boom".to_owned())));
    }
}
