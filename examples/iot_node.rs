//! An IoT/wearable node that must survive for decades — the paper's
//! motivating application ("some biomedical applications will require a
//! lifetime of more than 50 years for medical implants").
//!
//! The node duty-cycles: it wakes, works, and sleeps. This example
//! compares three ways of spending the sleep time:
//!
//! 1. staying biased (no power gating — stress never stops);
//! 2. conventional power-gated sleep (passive recovery);
//! 3. **deep healing**: the assist circuitry swaps the rails during sleep
//!    (active recovery), optionally warmed by a neighbouring radio block.
//!
//! ```sh
//! cargo run --example iot_node
//! ```

use deep_healing::prelude::*;

/// One duty cycle of the node: 6 minutes awake, 54 minutes asleep.
const AWAKE: Seconds = Seconds::new(360.0);
const ASLEEP: Seconds = Seconds::new(3240.0);
/// Simulated deployment length.
const YEARS: f64 = 10.0;

fn simulate(sleep_mode: &str) -> (f64, f64) {
    let mut device = BtiDevice::paper_calibrated();
    // A body-worn node: 0.6 V near-threshold supply, ~35 °C.
    let stress = StressCondition::new(Volts::new(0.6), Celsius::new(35.0));
    // The assist circuitry provides the deep-healing bias during sleep.
    let assist = AssistCircuit::paper_28nm();
    let bias = assist
        .solve(Mode::BtiActiveRecovery)
        .expect("paper circuit solves")
        .bti_recovery_bias();

    // Step a day at a time (24 duty cycles aggregated) for speed.
    let cycles_per_day = 24.0;
    let days = (YEARS * 365.0) as usize;
    for _ in 0..days {
        device.stress(AWAKE * cycles_per_day, stress);
        let sleep = ASLEEP * cycles_per_day;
        match sleep_mode {
            "biased" => device.stress(sleep, stress),
            "passive" => device.recover(
                sleep,
                RecoveryCondition::new(Volts::ZERO, Celsius::new(35.0)),
            ),
            "deep" => device.recover(sleep, RecoveryCondition::new(bias, Celsius::new(35.0))),
            _ => unreachable!("unknown sleep mode"),
        }
    }

    let ro = RingOscillator::paper_75_stage();
    (
        device.delta_vth_mv(),
        ro.degradation(device.delta_vth_mv()) * 100.0,
    )
}

fn main() {
    println!("IoT node, {YEARS:.0} years at 0.6 V / 35 °C, 10% duty cycle\n");
    println!(
        "{:<26} {:>12} {:>18}",
        "sleep strategy", "ΔVth (mV)", "freq loss (%)"
    );
    for (mode, label) in [
        ("biased", "no power gating"),
        ("passive", "power-gated sleep"),
        ("deep", "deep healing (assist)"),
    ] {
        let (dvth, freq) = simulate(mode);
        println!("{label:<26} {dvth:>12.2} {freq:>18.2}");
    }
    println!(
        "\nNear-threshold operation makes the node's speed hypersensitive to ΔVth —\n\
         deep healing keeps the margin a design can actually afford."
    );
}
