//! Protecting a power-delivery network with EM active recovery
//! (the paper's Fig. 11 context).
//!
//! Solves a layered PDN under a realistic load map, ranks every branch by
//! EM hazard, and shows how the assist circuitry's current-reversal duty
//! extends the lifetime of the vulnerable local grid.
//!
//! ```sh
//! cargo run --example pdn_protect
//! ```

use deep_healing::pdn::grid::{LayerClass, PdnConfig, PdnMesh};
use deep_healing::pdn::hazard::{duty_cycled_wear_factor, HazardReport};
use deep_healing::prelude::*;

fn main() {
    let mesh = PdnMesh::new(PdnConfig::default_chip()).expect("default chip is valid");
    let config = *mesh.config();

    // A hotspot load map: one busy quadrant, the rest idle-ish.
    let mut loads = vec![0.1e-3; config.local_nodes()];
    for r in 0..config.rows / 2 {
        for c in 0..config.cols / 2 {
            loads[r * config.cols + c] = 0.6e-3;
        }
    }
    let sol = mesh.solve(&loads).expect("mesh solves");
    println!("worst IR drop: {:.1} mV", sol.worst_ir_drop_v * 1000.0);

    let hazard = HazardReport::analyze(
        &sol,
        &BlackModel::calibrated_to_paper(),
        Celsius::new(85.0).to_kelvin(),
    );
    println!("\nEM hazard by layer:");
    for layer in [
        LayerClass::Local,
        LayerClass::Via,
        LayerClass::Global,
        LayerClass::Bump,
    ] {
        if let Some(e) = hazard.worst_in(layer) {
            println!(
                "  {:<8} peak j = {:>6.3} MA/cm²  worst TTF = {:>9.1} years",
                layer.to_string(),
                e.branch.density.as_ma_per_cm2(),
                e.median_ttf.as_years()
            );
        }
    }

    println!("\nten most hazardous branches:");
    for e in hazard.ranked.iter().take(10) {
        println!(
            "  {:<8} j = {:>6.3} MA/cm²  TTF = {:>9.1} years",
            e.branch.layer.to_string(),
            e.branch.density.as_ma_per_cm2(),
            e.median_ttf.as_years()
        );
    }

    println!("\nEM active-recovery duty on the local grid:");
    for duty in [0.0, 0.1, 0.2, 0.3, 0.45] {
        let factor = duty_cycled_wear_factor(Fraction::clamped(duty), Fraction::clamped(0.9));
        let worst = hazard.worst().expect("branches carry current");
        let extended = worst.median_ttf.as_years() / factor.max(1e-9);
        println!(
            "  duty {:>4.0}%: wear × {:.2} → worst local TTF {:>9.1} years",
            duty * 100.0,
            factor,
            extended
        );
    }
}
