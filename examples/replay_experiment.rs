//! Replays the paper's Table I condition-4 measurement on the virtual rig:
//! thermal chamber, 75-stage ring oscillator, noisy frequency counters —
//! producing the kind of raw trace behind the paper's figures.
//!
//! ```sh
//! cargo run --example replay_experiment
//! ```

use deep_healing::prelude::*;
use deep_healing::rig::MeasurementRig;

fn main() {
    let mut rig = MeasurementRig::paper_setup(42);

    println!("programming chamber to 110 °C and starting 24 h accelerated stress...");
    rig.set_chamber(Celsius::new(110.0));
    rig.run_stress(Volts::new(1.2), Seconds::from_hours(24.0));
    let stress_end = rig.time();

    println!("switching to deep recovery (−0.3 V) for 6 h...\n");
    rig.run_recovery(Volts::new(-0.3), Seconds::from_hours(6.0));
    let recovery_end = rig.time();

    // Print a decimated trace (one point per hour).
    println!("{:>10} {:>14}", "t (h)", "f (MHz)");
    for sample in rig.trace().iter().step_by(12) {
        println!("{:>10.1} {:>14.4}", sample.time.as_hours(), sample.value);
    }

    let measured = rig
        .measured_recovery_percent(stress_end, recovery_end)
        .expect("trace covers both times");
    println!("\nmeasured recovery: {measured:.1}%  (paper Table I condition 4: 72.4%)");
    println!(
        "true device state: ΔVth = {:.1} mV",
        rig.device().delta_vth_mv()
    );
}
