//! Interactive-style walkthrough of one EM test wire's life: stress it to
//! the edge of failure, rejuvenate it, stress again — the Fig. 5/6/7
//! physics as a narrative.
//!
//! ```sh
//! cargo run --example wire_rejuvenation
//! ```

use deep_healing::prelude::*;

fn report(wire: &EmWire, label: &str) {
    println!(
        "{label:<42} t = {:>6.0} min   R = {:>8.3}   void = {:>6.1} nm (pinned {:>5.1} nm)",
        wire.time().as_minutes(),
        wire.resistance(),
        wire.void_length_m(WireEnd::Cathode) * 1e9,
        wire.pinned_length_m(WireEnd::Cathode) * 1e9,
    );
}

fn main() {
    let j = CurrentDensity::from_ma_per_cm2(7.96);
    let mut wire = EmWire::paper_wire();
    report(&wire, "fresh wire (230 °C oven)");

    // Phase 1: nucleation — resistance is silent while stress builds.
    wire.advance(Seconds::from_minutes(180.0), j);
    report(&wire, "3 h of stress (still incubating)");

    while !wire.has_void() {
        wire.advance(Seconds::from_minutes(5.0), j);
    }
    report(&wire, "void nucleates");

    // Phase 2: growth.
    wire.advance(Seconds::from_minutes(240.0), j);
    report(&wire, "4 h of void growth");

    // Phase 3: deep healing.
    wire.advance(Seconds::from_minutes(90.0), -j);
    report(&wire, "90 min of reverse-current healing");

    // Phase 4: back to work — the wire starts its second life.
    wire.advance(Seconds::from_minutes(240.0), j);
    report(&wire, "4 more hours of stress");

    if wire.is_failed() {
        println!("\nthe wire broke — schedule recovery earlier next time");
    } else {
        println!(
            "\nstill alive after {:.0} min of cumulative stress — periodic healing \
             is how Fig. 7 stretches time-to-failure ~3×",
            wire.time().as_minutes()
        );
    }
}
