//! Redundant interconnect under EM: current redistribution, a failure
//! cascade, and rescue by periodic current reversal.
//!
//! ```sh
//! cargo run --release --example network_cascade
//! ```

use deep_healing::em::network::EmNetwork;
use deep_healing::prelude::*;

fn supply() -> f64 {
    // ≈8 MA/cm² in the short branch of the built-in asymmetric pair.
    8.0e10 * 0.4e-6 * 0.35e-6 * 320.0 / 180.0
}

fn main() {
    use deep_healing::units::Amperes;
    let i = Amperes::new(supply());

    println!("== a redundant pair under continuous stress ==\n");
    let mut net = EmNetwork::redundant_pair();
    let mut last_failed = 0;
    for hour in 1..=120 {
        net.advance(Seconds::from_hours(1.0), i);
        let failed = net.failed_segments();
        if failed != last_failed {
            let currents = net
                .segment_currents(i)
                .map(|c| {
                    c.iter()
                        .map(|a| format!("{:.2} mA", a.value() * 1e3))
                        .collect::<Vec<_>>()
                        .join(", ")
                })
                .unwrap_or_else(|_| "—".into());
            println!("t = {hour:>3} h: {failed} segment(s) failed; surviving currents: {currents}");
            last_failed = failed;
        }
        if !net.is_connected() {
            println!("t = {hour:>3} h: network disconnected — supply lost");
            break;
        }
    }

    println!("\n== the same pair with 20% periodic current reversal ==\n");
    let mut healed = EmNetwork::redundant_pair();
    let mut hours = 0;
    while healed.is_connected() && hours < 240 {
        healed.advance(Seconds::from_hours(4.0), i);
        healed.advance(Seconds::from_hours(1.0), -i);
        hours += 5;
    }
    if healed.is_connected() {
        println!("still connected after {hours} h — reversal duty outruns the wearout");
    } else {
        println!("disconnected at ~{hours} h (vs unprotected above)");
    }
    let total_dr: f64 = healed
        .segments()
        .iter()
        .map(|s| s.wire.delta_resistance().value())
        .filter(|dr| dr.is_finite())
        .map(|dr| dr.max(0.0))
        .sum();
    println!(
        "aggregate ΔR across surviving branches: {total_dr:.3} Ω ({} broken)",
        healed.failed_segments()
    );
}
