//! Quickstart: stress a BTI device, then heal it under each of the
//! paper's four recovery conditions (Table I), and watch an EM wire go
//! through nucleation, growth, and active recovery (Fig. 5).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use deep_healing::prelude::*;

fn main() {
    // ---- BTI: Table I in five lines ----------------------------------
    println!("== BTI: 24 h accelerated stress, then 6 h recovery ==\n");
    let model = AnalyticBtiModel::paper_calibrated();
    for (i, cond) in RecoveryCondition::table_one().iter().enumerate() {
        let r = model.recovery_fraction(Seconds::from_hours(24.0), Seconds::from_hours(6.0), *cond);
        println!(
            "condition {}: {:<34} recovers {:>5.1}",
            i + 1,
            cond.to_string(),
            r
        );
    }

    // The same protocol on the stateful device, step by step.
    let mut device = BtiDevice::paper_calibrated();
    device.stress(Seconds::from_hours(24.0), StressCondition::ACCELERATED);
    println!("\nafter stress: ΔVth = {:.1} mV", device.delta_vth_mv());
    device.recover(
        Seconds::from_hours(6.0),
        RecoveryCondition::ACTIVE_ACCELERATED,
    );
    println!(
        "after deep healing: ΔVth = {:.1} mV ({:.1} recovered)",
        device.delta_vth_mv(),
        device.segment_recovery()
    );

    // ---- EM: nucleation, growth, active recovery ---------------------
    println!("\n== EM: the paper's Cu test wire at 230 °C, ±7.96 MA/cm² ==\n");
    let mut wire = EmWire::paper_wire();
    let j = CurrentDensity::from_ma_per_cm2(7.96);
    println!("fresh:        R = {:.2}", wire.resistance());
    wire.advance(Seconds::from_minutes(550.0), j);
    println!(
        "after stress: R = {:.2} (void {} nm at the cathode)",
        wire.resistance(),
        (wire.void_length_m(WireEnd::Cathode) * 1e9).round()
    );
    wire.advance(Seconds::from_minutes(110.0), -j);
    println!(
        "after active recovery (reverse current, 1/5 of stress time): R = {:.2}",
        wire.resistance()
    );
    println!(
        "permanent (pinned) void: {} nm",
        (wire.pinned_length_m(WireEnd::Cathode) * 1e9).round()
    );
}
