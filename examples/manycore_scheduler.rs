//! Fig. 12(b) live: a 4×4 many-core system runs for a year under each
//! recovery policy, and the example prints the guardband each policy would
//! require plus the projected EM lifetime of the local power grids.
//!
//! ```sh
//! cargo run --release --example manycore_scheduler
//! ```

use deep_healing::experiments;

fn main() {
    let years = 1.0;
    println!("Running {years:.1}-year lifetimes under four policies (4x4 cores)...\n");
    let outcomes = experiments::fig12(years).expect("lifetime config is valid");
    println!("{}", experiments::render_fig12(&outcomes));

    let none = outcomes
        .iter()
        .find(|o| o.policy == "no-recovery")
        .expect("present");
    let deep = outcomes
        .iter()
        .find(|o| o.policy == "periodic-deep")
        .expect("present");
    println!(
        "Scheduled deep healing cuts the required frequency guardband {:.1}× \n\
         (from {:.2}% to {:.2}%) at {:.1}% core-time overhead.",
        none.required_guardband / deep.required_guardband.max(1e-9),
        none.required_guardband * 100.0,
        deep.required_guardband * 100.0,
        deep.recovery_overhead.as_percent(),
    );
}
