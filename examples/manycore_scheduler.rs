//! Fig. 12(b) live: a 4×4 many-core system runs for a year under each
//! recovery policy, and the example prints the guardband each policy would
//! require plus the projected EM lifetime of the local power grids — and
//! then, for the winning policy, what the scheduler actually did (its
//! [`deep_healing::sched::MetricsReport`]).
//!
//! ```sh
//! cargo run --release --example manycore_scheduler
//! ```

use deep_healing::experiments;
use deep_healing::prelude::*;

fn main() {
    // The deep-recovery bias comes from solving the paper's assist
    // circuitry; a malformed design is a recoverable error, not a panic.
    match SystemConfig::with_assist_circuit(&AssistCircuit::paper_28nm().with_header_width(0.0)) {
        Err(e) => println!("(a zero-width header is rejected: {e})\n"),
        Ok(_) => unreachable!("zero-width headers cannot be solved"),
    }
    let config = SystemConfig::with_assist_circuit(&AssistCircuit::paper_28nm())
        .expect("the paper's 28 nm assist circuitry solves");
    println!(
        "Assist circuitry rail swap applies {:.3} to the idle load.\n",
        config.bti_recovery_bias
    );

    let years = 1.0;
    println!("Running {years:.1}-year lifetimes under four policies (4x4 cores)...\n");
    let outcomes = experiments::fig12(years).expect("lifetime config is valid");
    println!("{}", experiments::render_fig12(&outcomes));

    let none = outcomes
        .iter()
        .find(|o| o.policy == "no-recovery")
        .expect("present");
    let deep = outcomes
        .iter()
        .find(|o| o.policy == "periodic-deep")
        .expect("present");
    println!(
        "Scheduled deep healing cuts the required frequency guardband {:.1}× \n\
         (from {:.2}% to {:.2}%) at {:.1}% core-time overhead.",
        none.required_guardband / deep.required_guardband.max(1e-9),
        none.required_guardband * 100.0,
        deep.required_guardband * 100.0,
        deep.recovery_overhead.as_percent(),
    );

    let m = &deep.metrics;
    println!(
        "\nWhat the periodic-deep scheduler did over {} epochs:\n\
         \x20 core-epochs in BTI-AR mode : {} of {} ({} mode transitions)\n\
         \x20 deep recovery scheduled    : {:.1} core-days\n\
         \x20 BTI wearout healed         : {:.2} mV of dVth removed\n\
         \x20 EM damage healed           : {:.4} Miner's-rule units",
        m.epochs,
        m.epochs_bti_ar,
        m.core_epochs,
        m.mode_transitions(),
        m.bti_recovery_seconds / 86_400.0,
        m.bti_healed_mv,
        m.em_damage_healed,
    );
}
